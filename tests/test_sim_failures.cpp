// Failure-injection edge cases on the simulator: multiple crashes, replica
// chains across failed hives, timer silencing, and the interaction of
// failures with merges and whole-dict bees.
#include <gtest/gtest.h>

#include "cluster/sim.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;
using testing::SumQuery;

class SimFailureTest : public ::testing::Test {
 protected:
  SimFailureTest() { apps_.emplace<CounterApp>(); }

  SimCluster make_sim(std::size_t n_hives) {
    ClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;
    config.hive.replication = true;
    return SimCluster(config, apps_);
  }

  template <typename M>
  void send(SimCluster& sim, HiveId hive, M msg) {
    sim.hive(hive).inject(
        MessageEnvelope::make(std::move(msg), 0, kNoBee, hive, sim.now()));
    sim.run_to_idle();
  }

  std::int64_t counter_value(SimCluster& sim, const std::string& key) {
    AppId app = apps_.find_by_name("test.counter")->id();
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (auto v = bee->store().dict(CounterApp::kDict).get_as<I64>(key)) {
        return v->v;
      }
    }
    return -1;
  }

  AppSet apps_;
};

TEST_F(SimFailureTest, RecoverySkipsOtherFailedHives) {
  SimCluster sim = make_sim(5);
  sim.start();
  send(sim, 2, Incr{"k", 9});
  // Hive 3 (the natural ring successor of 2) is also down: the bee must
  // land on hive 4 instead. Note: 3 fails before any state lands on it, so
  // recovery uses... hive 3 held the replica. Fail 3 *after* replication,
  // then 2: state is lost with 3, but liveness must survive on hive 4.
  sim.fail_hive(3);
  sim.fail_hive(2);
  sim.recover_hive(2);
  sim.run_to_idle();

  BeeId bee = sim.registry().live_bees()[0].id;
  EXPECT_EQ(sim.registry().hive_of(bee), 4u);
  // Hive 3 carried the replica, so the restart is empty — but writable.
  send(sim, 0, Incr{"k", 1});
  EXPECT_EQ(counter_value(sim, "k"), 1);
}

TEST_F(SimFailureTest, ReplicaOnSurvivingHiveSurvivesDoubleFailure) {
  SimCluster sim = make_sim(5);
  sim.start();
  send(sim, 2, Incr{"k", 9});  // bee on 2, replica on 3
  sim.fail_hive(2);
  sim.recover_hive(2);  // bee now on 3, new replica on 4
  sim.run_to_idle();
  send(sim, 0, Incr{"k", 1});  // 10 total, replicated to 4
  sim.fail_hive(3);
  sim.recover_hive(3);  // bee now on 4, with state
  sim.run_to_idle();
  EXPECT_EQ(counter_value(sim, "k"), 10);
  BeeId bee = sim.registry().live_bees()[0].id;
  EXPECT_EQ(sim.registry().hive_of(bee), 4u);
}

TEST_F(SimFailureTest, TimersOnFailedHiveGoSilent) {
  struct TickCounter : App {
    explicit TickCounter(int* ticks) : App("test.ticks") {
      every_foreach(kSecond, "t",
                    [ticks](AppContext&, const MessageEnvelope&) {
                      ++*ticks;
                    });
      on<Incr>(
          [](const Incr& m) { return CellSet::single("t", m.key); },
          [](AppContext& ctx, const Incr& m) {
            ctx.state().put_as("t", m.key, I64{1});
          });
    }
  };
  int ticks = 0;
  AppSet apps;
  apps.emplace<TickCounter>(&ticks);
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 0;
  config.hive.timers_until = 10 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  sim.hive(1).inject(
      MessageEnvelope::make(Incr{"x", 1}, 0, kNoBee, 1, sim.now()));
  sim.run_until(3 * kSecond + kMillisecond);
  int ticks_before = ticks;
  EXPECT_GE(ticks_before, 3);
  sim.fail_hive(1);
  sim.run_until(9 * kSecond);
  EXPECT_EQ(ticks, ticks_before);  // no more ticks from the dead hive
}

TEST_F(SimFailureTest, CentralizedBeeFailsOverWholeDictIntact) {
  SimCluster sim = make_sim(4);
  sim.start();
  // Keep every counter bee off hive 0: the registry master is out of
  // failure-injection scope, and the merge winner (lowest bee id) will be
  // the first key's bee — on hive 1.
  for (int i = 0; i < 6; ++i) {
    send(sim, static_cast<HiveId>(1 + i % 3),
         Incr{"c" + std::to_string(i), i});
  }
  send(sim, 1, SumQuery{1});  // centralizes all cells on hive 1's bee
  BeeRecord rec = sim.registry().live_bees()[0];
  ASSERT_EQ(sim.registry().live_bee_count(), 1u);

  sim.fail_hive(rec.hive);
  EXPECT_EQ(sim.recover_hive(rec.hive), 1u);
  sim.run_to_idle();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(counter_value(sim, "c" + std::to_string(i)), i);
  }
  // Whole-dict semantics survive: new keys still join the recovered bee.
  send(sim, 0, Incr{"late", 7});
  EXPECT_EQ(counter_value(sim, "late"), 7);
  EXPECT_EQ(sim.registry().live_bee_count(), 1u);
}

TEST_F(SimFailureTest, InjectionAtLiveHivesContinuesAfterCrash) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"a", 1});
  sim.fail_hive(1);
  sim.recover_hive(1);
  sim.run_to_idle();
  for (int i = 0; i < 10; ++i) {
    send(sim, static_cast<HiveId>(i % 2 == 0 ? 0 : 2), Incr{"a", 1});
  }
  EXPECT_EQ(counter_value(sim, "a"), 11);
}

TEST_F(SimFailureTest, HiveAliveReportsStatus) {
  SimCluster sim = make_sim(3);
  EXPECT_TRUE(sim.hive_alive(1));
  sim.fail_hive(1);
  EXPECT_FALSE(sim.hive_alive(1));
  EXPECT_TRUE(sim.hive_alive(0));
  EXPECT_TRUE(sim.hive_alive(2));
}

TEST_F(SimFailureTest, RecoverHiveValidatesItsArguments) {
  SimCluster sim = make_sim(3);
  sim.start();
  EXPECT_THROW(sim.recover_hive(99), std::invalid_argument);  // no such hive
  EXPECT_THROW(sim.recover_hive(1), std::logic_error);  // still alive
  sim.fail_hive(1);
  sim.recover_hive(1);
  EXPECT_THROW(sim.recover_hive(1), std::logic_error);  // double recovery
}

TEST_F(SimFailureTest, RegistryMasterCannotBeFailed) {
  SimCluster sim = make_sim(3);
  EXPECT_THROW(sim.fail_hive(0), std::invalid_argument);
  EXPECT_THROW(sim.fail_hive(99), std::invalid_argument);
  EXPECT_TRUE(sim.hive_alive(0));
}

}  // namespace
}  // namespace beehive
