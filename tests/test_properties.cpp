// Property-based tests: randomized workloads swept over cluster sizes and
// seeds (TEST_P / INSTANTIATE_TEST_SUITE_P), asserting the platform's core
// invariants from DESIGN.md §6:
//   1. exclusive ownership — every cell lives on exactly one bee;
//   2. intersecting-map collocation — keys linked by pair messages end on
//      the same bee, transitively;
//   4. migration transparency — no loss/duplication under random moves;
//   6. behaviour preservation — totals independent of cluster size/layout.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "cluster/sim.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;
using testing::PairIncr;
using testing::SumQuery;

struct WorkloadParams {
  std::size_t n_hives;
  std::size_t n_keys;
  std::size_t n_messages;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const WorkloadParams& p) {
    return os << "hives" << p.n_hives << "_keys" << p.n_keys << "_msgs"
              << p.n_messages << "_seed" << p.seed;
  }
};

class RandomWorkload : public ::testing::TestWithParam<WorkloadParams> {
 protected:
  RandomWorkload() { apps_.emplace<CounterApp>(); }

  SimCluster make_sim() {
    ClusterConfig config;
    config.n_hives = GetParam().n_hives;
    config.seed = GetParam().seed;
    config.hive.metrics_period = 0;
    return SimCluster(config, apps_);
  }

  AppId counter_app() { return apps_.find_by_name("test.counter")->id(); }

  /// Collects key -> (owning bee, value) over every hive, asserting no key
  /// appears on two bees (invariant 1).
  std::map<std::string, std::pair<BeeId, std::int64_t>> harvest(
      SimCluster& sim) {
    std::map<std::string, std::pair<BeeId, std::int64_t>> out;
    for (HiveId h = 0; h < GetParam().n_hives; ++h) {
      for (Bee* bee : sim.hive(h).local_bees()) {
        if (bee->app() != counter_app()) continue;
        const Dict* dict = bee->store().find_dict(CounterApp::kDict);
        if (dict == nullptr) continue;
        dict->for_each([&out, bee](const std::string& key, const Bytes& v) {
          auto [it, inserted] =
              out.emplace(key, std::make_pair(bee->id(),
                                              decode_from_bytes<I64>(v).v));
          EXPECT_TRUE(inserted)
              << "cell " << key << " present on two bees: "
              << to_string_bee(it->second.first) << " and "
              << to_string_bee(bee->id());
        });
      }
    }
    return out;
  }

  AppSet apps_;
};

TEST_P(RandomWorkload, ExclusiveOwnershipAndExactCounts) {
  const WorkloadParams& p = GetParam();
  SimCluster sim = make_sim();
  sim.start();
  Xoshiro256 rng(p.seed);

  std::map<std::string, std::int64_t> expected;
  for (std::size_t i = 0; i < p.n_messages; ++i) {
    std::string key = "k" + std::to_string(rng.next_below(p.n_keys));
    auto amount = static_cast<std::int64_t>(rng.next_below(10));
    auto hive = static_cast<HiveId>(rng.next_below(p.n_hives));
    expected[key] += amount;
    sim.hive(hive).inject(MessageEnvelope::make(Incr{key, amount}, 0, kNoBee,
                                                hive, sim.now()));
    if (i % 64 == 0) sim.run_to_idle();
  }
  sim.run_to_idle();

  auto actual = harvest(sim);
  for (const auto& [key, total] : expected) {
    ASSERT_TRUE(actual.contains(key)) << key;
    EXPECT_EQ(actual[key].second, total) << key;
  }
}

TEST_P(RandomWorkload, PairMessagesColocateTransitively) {
  const WorkloadParams& p = GetParam();
  SimCluster sim = make_sim();
  sim.start();
  Xoshiro256 rng(p.seed ^ 0xabcdef);

  // Union-find ground truth of which keys must share a bee.
  std::vector<std::size_t> parent(p.n_keys);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };

  std::map<std::string, std::int64_t> expected;
  for (std::size_t i = 0; i < p.n_messages; ++i) {
    auto hive = static_cast<HiveId>(rng.next_below(p.n_hives));
    if (rng.next_below(4) == 0) {
      std::size_t a = rng.next_below(p.n_keys);
      std::size_t b = rng.next_below(p.n_keys);
      parent[find(a)] = find(b);
      std::string ka = "k" + std::to_string(a);
      std::string kb = "k" + std::to_string(b);
      expected[ka] += 1;
      if (kb != ka) expected[kb] += 1;
      sim.hive(hive).inject(MessageEnvelope::make(PairIncr{ka, kb}, 0,
                                                  kNoBee, hive, sim.now()));
    } else {
      std::string key = "k" + std::to_string(rng.next_below(p.n_keys));
      expected[key] += 1;
      sim.hive(hive).inject(MessageEnvelope::make(Incr{key, 1}, 0, kNoBee,
                                                  hive, sim.now()));
    }
    if (i % 32 == 0) sim.run_to_idle();
  }
  sim.run_to_idle();

  auto actual = harvest(sim);
  // Counts exact (invariant 4: merges lose nothing).
  for (const auto& [key, total] : expected) {
    ASSERT_TRUE(actual.contains(key)) << key;
    EXPECT_EQ(actual[key].second, total) << key;
  }
  // Collocation matches the union-find ground truth (invariant 2): keys in
  // the same component share a bee.
  std::map<std::size_t, BeeId> component_bee;
  for (std::size_t k = 0; k < p.n_keys; ++k) {
    std::string key = "k" + std::to_string(k);
    if (!actual.contains(key)) continue;
    std::size_t root = find(k);
    auto [it, inserted] = component_bee.emplace(root, actual[key].first);
    EXPECT_EQ(it->second, actual[key].first)
        << "keys of one component split across bees (key " << key << ")";
  }
}

TEST_P(RandomWorkload, RandomMigrationsLoseNothing) {
  const WorkloadParams& p = GetParam();
  if (p.n_hives < 2) GTEST_SKIP();
  SimCluster sim = make_sim();
  sim.start();
  Xoshiro256 rng(p.seed ^ 0x777);

  std::map<std::string, std::int64_t> expected;
  for (std::size_t i = 0; i < p.n_messages; ++i) {
    std::string key = "k" + std::to_string(rng.next_below(p.n_keys));
    auto hive = static_cast<HiveId>(rng.next_below(p.n_hives));
    expected[key] += 1;
    sim.hive(hive).inject(
        MessageEnvelope::make(Incr{key, 1}, 0, kNoBee, hive, sim.now()));
    // Every few messages, order a random live bee to a random hive while
    // traffic is still in flight.
    if (rng.next_below(8) == 0) {
      auto bees = sim.registry().live_bees();
      if (!bees.empty()) {
        const BeeRecord& victim = bees[rng.next_below(bees.size())];
        auto to = static_cast<HiveId>(rng.next_below(p.n_hives));
        sim.hive(victim.hive).request_migration(victim.id, to);
      }
    }
    if (i % 16 == 0) sim.run_to_idle();
  }
  sim.run_to_idle();

  auto actual = harvest(sim);
  for (const auto& [key, total] : expected) {
    ASSERT_TRUE(actual.contains(key)) << key;
    EXPECT_EQ(actual[key].second, total) << key;
  }
}

TEST_P(RandomWorkload, TotalsIndependentOfClusterSize) {
  // Invariant 6 (behaviour preservation): the same logical workload on 1
  // hive and on N hives yields identical application state.
  const WorkloadParams& p = GetParam();

  auto run = [this, &p](std::size_t hives) {
    ClusterConfig config;
    config.n_hives = hives;
    config.seed = p.seed;
    config.hive.metrics_period = 0;
    SimCluster sim(config, apps_);
    sim.start();
    Xoshiro256 rng(p.seed ^ 0x42);
    for (std::size_t i = 0; i < p.n_messages; ++i) {
      std::string key = "k" + std::to_string(rng.next_below(p.n_keys));
      auto hive = static_cast<HiveId>(rng.next_below(hives));
      sim.hive(hive).inject(
          MessageEnvelope::make(Incr{key, 1}, 0, kNoBee, hive, sim.now()));
    }
    sim.run_to_idle();
    // Also exercise the whole-dict path: the grand total must match.
    std::map<std::string, std::int64_t> values;
    for (HiveId h = 0; h < hives; ++h) {
      for (Bee* bee : sim.hive(h).local_bees()) {
        const Dict* dict = bee->store().find_dict(CounterApp::kDict);
        if (dict == nullptr) continue;
        dict->for_each([&values](const std::string& k, const Bytes& v) {
          values[k] += decode_from_bytes<I64>(v).v;
        });
      }
    }
    return values;
  };

  auto centralized = run(1);
  auto distributed = run(p.n_hives);
  EXPECT_EQ(centralized, distributed);
}

TEST_P(RandomWorkload, WholeDictSumSeesEverything) {
  const WorkloadParams& p = GetParam();
  apps_.emplace<testing::SinkApp>();
  SimCluster sim = make_sim();
  sim.start();
  Xoshiro256 rng(p.seed ^ 0x5150);

  std::int64_t grand_total = 0;
  for (std::size_t i = 0; i < p.n_messages; ++i) {
    std::string key = "k" + std::to_string(rng.next_below(p.n_keys));
    auto amount = static_cast<std::int64_t>(1 + rng.next_below(5));
    auto hive = static_cast<HiveId>(rng.next_below(p.n_hives));
    grand_total += amount;
    sim.hive(hive).inject(MessageEnvelope::make(Incr{key, amount}, 0, kNoBee,
                                                hive, sim.now()));
  }
  sim.run_to_idle();
  sim.hive(0).inject(
      MessageEnvelope::make(SumQuery{1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();

  AppId sink = apps_.find_by_name("test.sink")->id();
  std::optional<std::int64_t> seen;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != sink) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    ASSERT_NE(bee, nullptr);
    if (auto v = bee->store()
                     .dict(testing::SinkApp::kDict)
                     .get_as<I64>("last:*sum*")) {
      seen = v->v;
    }
  }
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, grand_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomWorkload,
    ::testing::Values(
        WorkloadParams{1, 4, 100, 1}, WorkloadParams{2, 8, 200, 2},
        WorkloadParams{4, 16, 400, 3}, WorkloadParams{4, 16, 400, 4},
        WorkloadParams{8, 32, 600, 5}, WorkloadParams{8, 4, 600, 6},
        WorkloadParams{16, 64, 800, 7}, WorkloadParams{3, 2, 300, 8}),
    [](const ::testing::TestParamInfo<WorkloadParams>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// ---------------------------------------------------------------------------
// Determinism under fault injection: the same seed, fault plan and workload
// must reproduce the run bit-for-bit — traffic matrix, bandwidth series,
// injected-fault tallies and final application state.
// ---------------------------------------------------------------------------

class FaultedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultedDeterminism, IdenticalFaultedRunsAreIdentical) {
  AppSet apps;
  apps.emplace<CounterApp>();

  auto run = [&apps](std::uint64_t seed) {
    ClusterConfig config;
    config.n_hives = 4;
    config.seed = seed;
    config.hive.metrics_period = 0;
    config.hive.transport.enabled = true;
    SimCluster sim(config, apps);
    sim.start();
    sim.faults().set_default_link({.drop = 0.1,
                                   .duplicate = 0.05,
                                   .jitter = 0.3,
                                   .jitter_max = kMillisecond,
                                   .reorder = 0.1});
    sim.faults().partition(1, 3);
    Xoshiro256 workload(seed + 1);
    for (int i = 0; i < 200; ++i) {
      auto hive = static_cast<HiveId>(workload.next_below(4));
      std::string key = "k" + std::to_string(workload.next_below(8));
      sim.hive(hive).inject(MessageEnvelope::make(Incr{key, 1}, 0, kNoBee,
                                                  hive, sim.now()));
      sim.run_for(100 * kMicrosecond);
      if (i == 100) sim.faults().heal(1, 3);
    }
    sim.run_to_idle();

    struct Result {
      std::vector<std::uint64_t> matrix;
      std::vector<std::uint64_t> series;
      std::uint64_t dropped, duplicated, delayed, partitioned;
      std::map<std::string, std::int64_t> counters;
    } r;
    for (HiveId from = 0; from < 4; ++from) {
      for (HiveId to = 0; to < 4; ++to) {
        r.matrix.push_back(sim.meter().matrix_bytes(from, to));
        r.matrix.push_back(sim.meter().matrix_messages(from, to));
      }
    }
    r.series = sim.meter().bandwidth_series();
    r.dropped = sim.faults().stats().frames_dropped;
    r.duplicated = sim.faults().stats().frames_duplicated;
    r.delayed = sim.faults().stats().frames_delayed;
    r.partitioned = sim.faults().stats().frames_partitioned;
    AppId app = apps.find_by_name("test.counter")->id();
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (const Dict* d = bee->store().find_dict(CounterApp::kDict)) {
        d->for_each([&r](const std::string& key, const Bytes& v) {
          r.counters[key] = decode_from_bytes<I64>(v).v;
        });
      }
    }
    return r;
  };

  auto a = run(GetParam());
  auto b = run(GetParam());
  EXPECT_EQ(a.matrix, b.matrix);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.partitioned, b.partitioned);
  EXPECT_EQ(a.counters, b.counters);
  // The plan actually did something, and the workload still landed exactly.
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.partitioned, 0u);
  std::int64_t total = 0;
  for (const auto& [key, v] : a.counters) total += v;
  EXPECT_EQ(total, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedDeterminism,
                         ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------------------
// Codec property sweep: random values survive a wire round-trip.
// ---------------------------------------------------------------------------

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, EnvelopeRoundTripRandomized) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Incr msg;
    std::size_t len = rng.next_below(40);
    msg.key.reserve(len);
    for (std::size_t c = 0; c < len; ++c) {
      msg.key.push_back(static_cast<char>(rng.next_below(256)));
    }
    msg.amount = static_cast<std::int64_t>(rng.next());
    auto env = MessageEnvelope::make(
        msg, static_cast<AppId>(rng.next_below(1000)), rng.next(),
        static_cast<HiveId>(rng.next_below(64)),
        static_cast<TimePoint>(rng.next_below(1u << 30)));
    MessageEnvelope back = MessageEnvelope::from_wire(env.to_wire());
    EXPECT_EQ(back.as<Incr>().key, msg.key);
    EXPECT_EQ(back.as<Incr>().amount, msg.amount);
    EXPECT_EQ(back.from_bee(), env.from_bee());
    EXPECT_EQ(back.wire_size(), env.wire_size());
  }
}

TEST_P(CodecProperty, VarintRoundTripRandomized) {
  Xoshiro256 rng(GetParam() ^ 0x1234);
  ByteWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    // Bias toward small values and boundaries.
    std::uint64_t v = rng.next() >> (rng.next_below(64));
    values.push_back(v);
    w.varint(v);
  }
  ByteReader r(w.bytes());
  for (std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST_P(CodecProperty, StateSnapshotRoundTripRandomized) {
  Xoshiro256 rng(GetParam() ^ 0x9999);
  StateStore store;
  for (int i = 0; i < 50; ++i) {
    std::string dict = "d" + std::to_string(rng.next_below(5));
    std::string key = "k" + std::to_string(rng.next_below(20));
    Bytes value;
    std::size_t len = rng.next_below(100);
    for (std::size_t c = 0; c < len; ++c) {
      value.push_back(static_cast<char>(rng.next_below(256)));
    }
    store.dict(dict).put(key, value);
  }
  StateStore back = StateStore::from_snapshot(store.snapshot());
  EXPECT_EQ(back.snapshot(), store.snapshot());
  EXPECT_EQ(back.byte_size(), store.byte_size());
  EXPECT_EQ(back.all_cells(), store.all_cells());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace beehive
