// Unit tests for the foundation layers: byte codecs, message envelopes,
// type registry, cells, dictionaries, stores and transactions.
#include <gtest/gtest.h>

#include <limits>

#include "msg/message.h"
#include "msg/registry.h"
#include "state/cell.h"
#include "state/dict.h"
#include "state/store.h"
#include "state/txn.h"
#include "tests/test_helpers.h"
#include "util/bytes.h"
#include "util/hash.h"
#include "util/rng.h"

namespace beehive {
namespace {

using testing::CounterValue;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, VarintBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  std::numeric_limits<std::uint32_t>::max(),
                                  std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint(), v) << "value " << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, VarintIsCompactForSmallValues) {
  ByteWriter w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Bytes, StringsWithEmbeddedNulAndUnicode) {
  ByteWriter w;
  w.str(std::string("a\0b", 3));
  w.str("héllo wörld");
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), std::string("a\0b", 3));
  EXPECT_EQ(r.str(), "héllo wörld");
  EXPECT_EQ(r.str(), "");
}

TEST(Bytes, UnderrunThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(Bytes, MalformedVarintThrows) {
  Bytes ten_continuations(10, static_cast<char>(0xff));
  ByteReader r(ten_continuations);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes follow
  w.raw("short");
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(Bytes, HexDumpTruncates) {
  Bytes data(100, 'x');
  std::string dump = hex_dump(data, 4);
  EXPECT_EQ(dump, "78 78 78 78 ...");
}

// ---------------------------------------------------------------------------
// Hash / RNG determinism
// ---------------------------------------------------------------------------

TEST(Hash, Fnv1aIsStable) {
  // Known-answer: identifiers must never change across builds.
  EXPECT_EQ(fnv1a32(""), 0x811c9dc5u);
  EXPECT_EQ(fnv1a32("a"), 0xe40c292cu);
  EXPECT_NE(fnv1a32("te.naive"), fnv1a32("te.decoupled"));
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextInRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_in(2.5, 7.5);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 7.5);
  }
}

// ---------------------------------------------------------------------------
// Message envelope & registry
// ---------------------------------------------------------------------------

TEST(Message, TypedAccess) {
  auto env = MessageEnvelope::make(Incr{"k", 5}, 11, 22, 3, 1000);
  EXPECT_TRUE(env.is<Incr>());
  EXPECT_FALSE(env.is<CounterValue>());
  EXPECT_EQ(env.as<Incr>().key, "k");
  EXPECT_EQ(env.as<Incr>().amount, 5);
  EXPECT_EQ(env.from_app(), 11u);
  EXPECT_EQ(env.from_bee(), 22u);
  EXPECT_EQ(env.from_hive(), 3u);
  EXPECT_EQ(env.emitted_at(), 1000);
  EXPECT_THROW(env.as<CounterValue>(), std::logic_error);
}

TEST(Message, WireRoundTrip) {
  auto env = MessageEnvelope::make(Incr{"roundtrip", -9}, 1, 2, 3, 44);
  Bytes wire = env.to_wire();
  MessageEnvelope back = MessageEnvelope::from_wire(wire);
  EXPECT_EQ(back.type(), env.type());
  EXPECT_EQ(back.from_app(), 1u);
  EXPECT_EQ(back.from_bee(), 2u);
  EXPECT_EQ(back.from_hive(), 3u);
  EXPECT_EQ(back.emitted_at(), 44);
  EXPECT_EQ(back.as<Incr>().key, "roundtrip");
  EXPECT_EQ(back.as<Incr>().amount, -9);
}

TEST(Message, WireSizeCountsPayload) {
  auto small = MessageEnvelope::make(Incr{"a", 1});
  auto large = MessageEnvelope::make(Incr{std::string(100, 'x'), 1});
  EXPECT_GT(large.wire_size(), small.wire_size());
  EXPECT_GE(small.wire_size(), MessageEnvelope::kHeaderBytes);
}

TEST(Registry, EnsureIsIdempotent) {
  auto& reg = MsgTypeRegistry::instance();
  MsgTypeId id1 = reg.ensure<Incr>();
  MsgTypeId id2 = reg.ensure<Incr>();
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(reg.name_of(id1), "test.incr");
}

TEST(Registry, UnknownTypeHasPlaceholderName) {
  EXPECT_EQ(MsgTypeRegistry::instance().name_of(0xfffffffe), "<unknown>");
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

TEST(CellSet, InsertDeduplicatesAndSorts) {
  CellSet s;
  s.insert({"d", "b"});
  s.insert({"d", "a"});
  s.insert({"d", "b"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].key, "a");
  EXPECT_EQ(s[1].key, "b");
}

TEST(CellSet, IntersectionExactKeys) {
  CellSet a{{"d", "x"}, {"d", "y"}};
  CellSet b{{"d", "y"}, {"d", "z"}};
  CellSet c{{"d", "z"}, {"e", "x"}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(b.intersects(c));
}

TEST(CellSet, WholeDictIntersectsEveryKeyOfThatDict) {
  CellSet whole = CellSet::whole_dict("d");
  CellSet key = CellSet::single("d", "k");
  CellSet other_dict = CellSet::single("e", "k");
  EXPECT_TRUE(whole.intersects(key));
  EXPECT_TRUE(key.intersects(whole));
  EXPECT_FALSE(whole.intersects(other_dict));
  EXPECT_TRUE(whole.intersects(whole));
}

TEST(CellSet, EncodeDecodeRoundTrip) {
  CellSet s{{"S", "1"}, {"T", "*"}, {"S", "44"}};
  ByteWriter w;
  s.encode(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(CellSet::decode(r), s);
}

TEST(CellSet, MergeIsUnion) {
  CellSet a{{"d", "1"}};
  CellSet b{{"d", "2"}, {"d", "1"}};
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

// ---------------------------------------------------------------------------
// Dict / StateStore
// ---------------------------------------------------------------------------

TEST(Dict, PutGetEraseContains) {
  Dict d("test");
  EXPECT_FALSE(d.contains("k"));
  d.put("k", "v1");
  EXPECT_EQ(d.get("k"), "v1");
  d.put("k", "v2");
  EXPECT_EQ(d.get("k"), "v2");
  EXPECT_TRUE(d.erase("k"));
  EXPECT_FALSE(d.erase("k"));
  EXPECT_EQ(d.get("k"), std::nullopt);
}

TEST(Dict, TypedAccessors) {
  Dict d("test");
  d.put_as("x", I64{42});
  auto v = d.get_as<I64>("x");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->v, 42);
  EXPECT_FALSE(d.get_as<I64>("missing").has_value());
}

TEST(Dict, ForEachIsKeyOrdered) {
  Dict d("test");
  d.put("b", "2");
  d.put("a", "1");
  d.put("c", "3");
  std::string order;
  d.for_each([&order](const std::string& k, const Bytes&) { order += k; });
  EXPECT_EQ(order, "abc");
}

TEST(Dict, EncodeDecodeRoundTrip) {
  Dict d("mydict");
  d.put("k1", "value one");
  d.put("k2", std::string("\0\1\2", 3));
  ByteWriter w;
  d.encode(w);
  ByteReader r(w.bytes());
  Dict back = Dict::decode(r);
  EXPECT_EQ(back.name(), "mydict");
  EXPECT_EQ(back.get("k1"), "value one");
  EXPECT_EQ(back.get("k2"), std::string("\0\1\2", 3));
}

TEST(StateStore, SnapshotRoundTrip) {
  StateStore s;
  s.dict("a").put("k", "v");
  s.dict("b").put_as("n", I64{7});
  StateStore restored = StateStore::from_snapshot(s.snapshot());
  EXPECT_EQ(restored.dict("a").get("k"), "v");
  EXPECT_EQ(restored.dict("b").get_as<I64>("n")->v, 7);
  EXPECT_EQ(restored.byte_size(), s.byte_size());
}

TEST(StateStore, MergeFromMovesEverything) {
  StateStore a, b;
  a.dict("d").put("x", "1");
  b.dict("d").put("y", "2");
  b.dict("e").put("z", "3");
  a.merge_from(std::move(b));
  EXPECT_EQ(a.dict("d").get("x"), "1");
  EXPECT_EQ(a.dict("d").get("y"), "2");
  EXPECT_EQ(a.dict("e").get("z"), "3");
}

TEST(StateStore, AllCellsEnumerates) {
  StateStore s;
  s.dict("d").put("a", "1");
  s.dict("e").put("b", "2");
  CellSet cells = s.all_cells();
  EXPECT_TRUE(cells.contains({"d", "a"}));
  EXPECT_TRUE(cells.contains({"e", "b"}));
  EXPECT_EQ(cells.size(), 2u);
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

TEST(Txn, CommitMakesWritesVisible) {
  StateStore store;
  {
    Txn txn(store, AccessPolicy::all());
    txn.put("d", "k", "v");
    txn.commit();
  }
  EXPECT_EQ(store.dict("d").get("k"), "v");
}

TEST(Txn, DestructorWithoutCommitRollsBack) {
  StateStore store;
  store.dict("d").put("k", "old");
  {
    Txn txn(store, AccessPolicy::all());
    txn.put("d", "k", "new");
    txn.put("d", "fresh", "x");
    // no commit
  }
  EXPECT_EQ(store.dict("d").get("k"), "old");
  EXPECT_FALSE(store.dict("d").contains("fresh"));
}

TEST(Txn, RollbackRestoresOverwritesInOrder) {
  StateStore store;
  store.dict("d").put("k", "original");
  Txn txn(store, AccessPolicy::all());
  txn.put("d", "k", "first");
  txn.put("d", "k", "second");
  txn.rollback();
  EXPECT_EQ(store.dict("d").get("k"), "original");
}

TEST(Txn, RollbackUndoesErase) {
  StateStore store;
  store.dict("d").put("k", "keepme");
  Txn txn(store, AccessPolicy::all());
  EXPECT_TRUE(txn.erase("d", "k"));
  EXPECT_FALSE(txn.contains("d", "k"));
  txn.rollback();
  EXPECT_EQ(store.dict("d").get("k"), "keepme");
}

TEST(Txn, EraseMissingKeyReturnsFalse) {
  StateStore store;
  Txn txn(store, AccessPolicy::all());
  EXPECT_FALSE(txn.erase("d", "nothing"));
  txn.commit();
}

TEST(Txn, PolicyBlocksUnmappedCell) {
  StateStore store;
  Txn txn(store, AccessPolicy::cells(CellSet::single("d", "allowed")));
  txn.put("d", "allowed", "ok");
  EXPECT_THROW(txn.put("d", "forbidden", "x"), StateAccessError);
  EXPECT_THROW(txn.get("e", "allowed"), StateAccessError);
}

TEST(Txn, PolicyWholeDictAllowsScanAndAnyKey) {
  StateStore store;
  store.dict("d").put("a", "1");
  Txn txn(store, AccessPolicy::cells(CellSet::whole_dict("d")));
  txn.put("d", "anything", "v");
  int seen = 0;
  txn.for_each("d", [&seen](const std::string&, const Bytes&) { ++seen; });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(txn.dict_size("d"), 2u);
  txn.commit();
}

TEST(Txn, ScanWithoutWholeDictThrows) {
  StateStore store;
  Txn txn(store, AccessPolicy::cells(CellSet::single("d", "k")));
  EXPECT_THROW(
      txn.for_each("d", [](const std::string&, const Bytes&) {}),
      StateAccessError);
  EXPECT_THROW(txn.dict_size("d"), StateAccessError);
}

TEST(Txn, LocalDictPolicyGrantsScanAndKeys) {
  StateStore store;
  store.dict("d").put("a", "1");
  Txn txn(store, AccessPolicy::local_dict("d"));
  txn.put("d", "b", "2");
  std::size_t n = 0;
  txn.for_each("d", [&n](const std::string&, const Bytes&) { ++n; });
  EXPECT_EQ(n, 2u);
  EXPECT_THROW(txn.put("other", "k", "v"), StateAccessError);
  txn.commit();
}

TEST(Txn, WriteCountTracksUndoLog) {
  StateStore store;
  Txn txn(store, AccessPolicy::all());
  EXPECT_EQ(txn.write_count(), 0u);
  txn.put("d", "a", "1");
  txn.put("d", "b", "2");
  EXPECT_EQ(txn.write_count(), 2u);
  txn.commit();
}

}  // namespace
}  // namespace beehive
