// Tests for the dispatch hot path: batched frame egress (coalescing,
// per-link FIFO, span pairing, determinism under faults), the single-Map
// dispatch contract, untrusted-length clamps, the threaded runtime's
// condition-variable quiescence, and allocation budgets for the local and
// remote steady-state routes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/sim.h"
#include "cluster/thread_cluster.h"
#include "msg/codec.h"
#include "tests/test_helpers.h"

// ---------------------------------------------------------------------------
// Counting allocator (same harness as bench/micro_dispatch.cpp): replaces
// every global operator new variant so the steady-state allocation tests
// observe each heap round-trip the dispatch path makes. Deletes route to
// free() for all of them, which trips -Wmismatched-new-delete's pattern
// matching — suppressed, the pairing is correct by construction.
// ---------------------------------------------------------------------------

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  return std::aligned_alloc(a, rounded == 0 ? a : rounded);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return ::operator new(n, al, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// Test apps
// ---------------------------------------------------------------------------

/// Sequence-numbered message: the order probe for per-link FIFO tests.
struct SeqMsg {
  static constexpr std::string_view kTypeName = "test.seq";
  std::uint32_t seq = 0;

  void encode(ByteWriter& w) const { w.u32(seq); }
  static SeqMsg decode(ByteReader& r) { return {r.u32()}; }
};

/// Routes every SeqMsg to one cell and records arrival order into a
/// test-owned sink (the sim is single-threaded, so no locking).
class OrderApp : public App {
 public:
  explicit OrderApp(std::vector<std::uint32_t>* sink) : App("test.order") {
    on<SeqMsg>(
        [](const SeqMsg&) { return CellSet::single("ord", "all"); },
        [sink](AppContext& ctx, const SeqMsg& m) {
          sink->push_back(m.seq);
          ctx.state().put_as("ord", "all", I64{m.seq});
        });
  }
};

/// CounterApp clone whose Map invocations are counted: the probe for the
/// "Map runs exactly once per mapped message" contract.
class CountingMapApp : public App {
 public:
  explicit CountingMapApp(std::atomic<std::uint64_t>* map_calls)
      : App("test.counting_map") {
    on<Incr>(
        [map_calls](const Incr& m) {
          map_calls->fetch_add(1, std::memory_order_relaxed);
          return CellSet::single("cnt", m.key);
        },
        [](AppContext& ctx, const Incr& m) {
          I64 v = ctx.state().get_as<I64>("cnt", m.key).value_or(I64{});
          v.v += m.amount;
          ctx.state().put_as("cnt", m.key, v);
        });
  }
};

ClusterConfig two_hive_config() {
  ClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.hive.metrics_period = 0;
  return cfg;
}

/// Pins every placement to hive 1 so injections on hive 0 always cross the
/// control channel.
void pin_to_hive_1(SimCluster& sim) {
  sim.registry().set_placement_hook(
      [](AppId, const CellSet&, HiveId) -> HiveId { return 1; });
}

// ---------------------------------------------------------------------------
// Batching semantics
// ---------------------------------------------------------------------------

TEST(DispatchBatching, BurstCoalescesIntoFewWireUnits) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(two_hive_config(), apps);
  pin_to_hive_1(sim);
  sim.start();

  // Prime placement and caches, then measure the wire units of a burst.
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  sim.meter().reset();

  constexpr int kBurst = 100;
  for (int i = 0; i < kBurst; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  EXPECT_EQ(sim.hive(1).counters().handler_runs, 1u + kBurst);
  // All 100 app frames were appended before the single flush event ran, so
  // they crossed as one kBatch unit (plus at most a handful of protocol
  // frames, e.g. replica traffic — none here).
  EXPECT_LE(sim.meter().matrix_messages(0, 1), 3u)
      << "a same-turn burst must coalesce into a few wire units";
  EXPECT_GE(sim.meter().matrix_bytes(0, 1),
            static_cast<std::uint64_t>(kBurst) *
                MessageEnvelope::kFixedHeaderBytes)
      << "batching must not drop the per-message byte accounting";
}

TEST(DispatchBatching, PerLinkFifoOrderPreserved) {
  std::vector<std::uint32_t> order;
  AppSet apps;
  apps.emplace<OrderApp>(&order);
  SimCluster sim(two_hive_config(), apps);
  pin_to_hive_1(sim);
  sim.start();

  constexpr std::uint32_t kN = 500;
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(SeqMsg{i}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  ASSERT_EQ(order.size(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(order[i], i) << "messages on one (source,dest) link must "
                              "arrive in emission order";
  }
}

TEST(DispatchBatching, ChannelSpansPairedWithBatching) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg = two_hive_config();
  cfg.tracing = true;
  SimCluster sim(cfg, apps);
  pin_to_hive_1(sim);
  sim.start();

  constexpr int kBurst = 50;
  for (int i = 0; i < kBurst; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  std::size_t n_sends = 0;
  std::set<std::uint64_t> sends, recvs;
  for (const TraceEvent& e : sim.trace_events()) {
    if (e.kind == SpanKind::kChannelSend) {
      ++n_sends;
      sends.insert(e.aux);
    }
    if (e.kind == SpanKind::kChannelRecv) recvs.insert(e.aux);
  }
  ASSERT_FALSE(sends.empty()) << "burst must cross the channel";
  EXPECT_EQ(sends.size(), n_sends) << "frame sequence ids must be unique";
  EXPECT_EQ(sends, recvs) << "every sent batch must be received exactly once";
  EXPECT_LT(n_sends, static_cast<std::size_t>(kBurst))
      << "spans must be per wire unit (batch), not per message";
}

TEST(DispatchBatching, SameSeedDeterministicUnderFaults) {
  auto run = []() {
    AppSet apps;
    apps.emplace<CounterApp>();
    ClusterConfig cfg = two_hive_config();
    cfg.seed = 1234;
    cfg.hive.transport.enabled = true;  // batches are the transport's units
    SimCluster sim(cfg, apps);
    sim.faults().set_default_link({.drop = 0.1,
                                   .duplicate = 0.05,
                                   .jitter = 0.2,
                                   .jitter_max = 500 * kMicrosecond,
                                   .reorder = 0.1});
    pin_to_hive_1(sim);
    sim.start();
    for (int i = 0; i < 200; ++i) {
      sim.hive(i % 2).inject(MessageEnvelope::make(
          Incr{"k" + std::to_string(i % 5), 1}, 0, kNoBee,
          static_cast<HiveId>(i % 2), sim.now()));
      if (i % 10 == 9) sim.run_for(300 * kMicrosecond);
    }
    sim.run_to_idle();
    std::uint64_t runs = 0;
    for (HiveId h = 0; h < 2; ++h) {
      runs += sim.hive(h).counters().handler_runs;
    }
    return std::make_tuple(runs, sim.meter().total_bytes(),
                           sim.meter().total_messages(),
                           sim.faults().stats().frames_dropped,
                           sim.faults().stats().frames_duplicated);
  };
  EXPECT_EQ(run(), run()) << "batched egress must stay bit-deterministic "
                             "under an active fault plan";
}

// ---------------------------------------------------------------------------
// Single-Map dispatch
// ---------------------------------------------------------------------------

TEST(SingleMapDispatch, LocalDeliveryRunsMapOnce) {
  std::atomic<std::uint64_t> map_calls{0};
  AppSet apps;
  apps.emplace<CountingMapApp>(&map_calls);
  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = 0;
  SimCluster sim(cfg, apps);
  sim.start();

  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  EXPECT_EQ(sim.hive(0).counters().handler_runs, kN);
  EXPECT_EQ(map_calls.load(), static_cast<std::uint64_t>(kN))
      << "the dispatch Map result must be reused for the handler's access "
         "policy, not recomputed at bind time";
}

TEST(SingleMapDispatch, RemoteDeliveryRunsMapOncePerHive) {
  std::atomic<std::uint64_t> map_calls{0};
  AppSet apps;
  apps.emplace<CountingMapApp>(&map_calls);
  SimCluster sim(two_hive_config(), apps);
  pin_to_hive_1(sim);
  sim.start();

  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  EXPECT_EQ(sim.hive(1).counters().handler_runs, kN);
  // Once on the resolving hive (routing) + once on the owning hive (access
  // policy): the Map result is not shipped, so twice total — and no more.
  EXPECT_EQ(map_calls.load(), 2u * kN);
}

// ---------------------------------------------------------------------------
// Untrusted-length clamp
// ---------------------------------------------------------------------------

TEST(DecodeClamp, HugeVectorCountUnderrunsInsteadOfAllocating) {
  ByteWriter w;
  w.varint(std::uint64_t{1} << 60);  // claimed count, no elements follow
  const Bytes wire = std::move(w).take();
  ByteReader r(wire);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_THROW(decode_vector<I64>(r), DecodeError);
  const std::uint64_t spent =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  // The clamp bounds the pre-reserve to the bytes actually present (~10):
  // a corrupt count must not turn into a multi-GB allocation attempt.
  EXPECT_LE(spent, 4u);
}

TEST(DecodeClamp, ReplicaTxnFrameCountClamped) {
  ByteWriter w;
  ReplicaTxnFrame f;
  f.bee = 1;
  f.app = 2;
  f.encode(w);
  Bytes wire = std::move(w).take();
  // Overwrite the (empty) writes count with a huge varint and truncate.
  wire.resize(wire.size() - 1);
  ByteWriter tail;
  tail.varint(std::uint64_t{1} << 50);
  wire += std::move(tail).take();
  ByteReader r(wire);
  EXPECT_THROW(ReplicaTxnFrame::decode(r), DecodeError);
}

// ---------------------------------------------------------------------------
// ThreadCluster quiescence (condition-variable wait_idle)
// ---------------------------------------------------------------------------

TEST(ThreadClusterIdle, WaitIdleReturnsAfterBurst) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ThreadClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.metrics = false;
  cfg.hive.metrics_period = 0;
  cfg.hive.timers_until = 0;  // no timer wakeups: idle is a fixpoint
  ThreadCluster cluster(cfg, apps);
  cluster.start();
  cluster.wait_idle();  // post-start quiescence

  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 25; ++i) {
      cluster.post(static_cast<HiveId>(i % 2), [&cluster, i]() {
        cluster.hive(static_cast<HiveId>(i % 2))
            .inject(MessageEnvelope::make(Incr{"k" + std::to_string(i % 3), 1},
                                          0, kNoBee,
                                          static_cast<HiveId>(i % 2), 0));
      });
    }
    cluster.wait_idle();
  }
  std::uint64_t runs = 0;
  for (HiveId h = 0; h < 2; ++h) {
    runs += cluster.hive(h).counters().handler_runs;
  }
  EXPECT_EQ(runs, 20u * 25u) << "wait_idle must imply all posted work "
                                "(and its transitive dispatch) completed";
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Allocation budgets (steady state)
// ---------------------------------------------------------------------------

TEST(DispatchAllocs, LocalSteadyStateIsAllocationFree) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = 0;
  SimCluster sim(cfg, apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (int i = 0; i < 2000; ++i) sim.hive(0).inject(msg);  // warm everything
  sim.run_to_idle();

  constexpr std::uint64_t kN = 5000;
  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < kN; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  ASSERT_EQ(sim.hive(0).counters().handler_runs - runs_before, kN);
  EXPECT_EQ(allocs, 0u)
      << "the warmed local dispatch+handler path must not touch the heap";
}

TEST(DispatchAllocs, BoundedLocalSteadyStateIsAllocationFree) {
  // Satellite of DESIGN.md §10: turning on a mailbox bound and a credit
  // window must not cost the local fast path anything — the bound is only
  // consulted on the (cold) hold path, and credit bookkeeping lives in the
  // remote transport.
  AppSet apps;
  CounterApp& app = apps.emplace<CounterApp>();
  app.set_overload({.bounded = true,
                    .mailbox_limit = 64,
                    .policy = OverloadPolicy::kShedNewest});
  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = 0;
  cfg.hive.transport.credit_window = 8;
  SimCluster sim(cfg, apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (int i = 0; i < 2000; ++i) sim.hive(0).inject(msg);  // warm everything
  sim.run_to_idle();

  constexpr std::uint64_t kN = 5000;
  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < kN; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  ASSERT_EQ(sim.hive(0).counters().handler_runs - runs_before, kN);
  EXPECT_EQ(sim.hive(0).counters().shed_total, 0u)
      << "an unloaded bounded mailbox must not shed";
  EXPECT_EQ(allocs, 0u)
      << "bounded mailboxes and credit bookkeeping must add zero "
         "allocations per message on the warmed local path";
}

TEST(DispatchAllocs, RemoteSteadyStateWithinTwoAllocsPerMessage) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(two_hive_config(), apps);
  pin_to_hive_1(sim);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  constexpr std::uint64_t kBurst = 2000;
  for (std::uint64_t i = 0; i < kBurst; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();  // warm caches, scratch buffers, event queue capacity

  constexpr std::uint64_t kRounds = 3;
  const std::uint64_t runs_before = sim.hive(1).counters().handler_runs;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint64_t i = 0; i < kBurst; ++i) sim.hive(0).inject(msg);
    sim.run_to_idle();
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  const std::uint64_t delivered =
      sim.hive(1).counters().handler_runs - runs_before;
  ASSERT_EQ(delivered, kRounds * kBurst);
  EXPECT_LE(static_cast<double>(allocs) / static_cast<double>(delivered), 2.0)
      << "remote dispatch must average <= 2 allocations per message "
         "(typed body materialization + amortized batch machinery); got "
      << allocs << " allocs for " << delivered << " messages";
}

}  // namespace
}  // namespace beehive
