// Tests for the Seattle-style host-location directory (paper §4).
#include <gtest/gtest.h>

#include "apps/host_location.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace beehive {
namespace {

/// Sink recording the last HostLocation reply per query id.
class LocationSink : public App {
 public:
  LocationSink() : App("test.loc_sink") {
    on<HostLocation>(
        [](const HostLocation&) { return CellSet::whole_dict("loc"); },
        [](AppContext& ctx, const HostLocation& m) {
          ctx.state().put_as("loc", std::to_string(m.query_id), m);
        });
  }

  static std::optional<HostLocation> reply(SimCluster& sim, AppId app,
                                           std::uint64_t query_id) {
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      auto v = bee->store().dict("loc").get_as<HostLocation>(
          std::to_string(query_id));
      if (v) return v;
    }
    return std::nullopt;
  }
};

class HostLocationTest : public ::testing::Test {
 protected:
  HostLocationTest() {
    apps_.emplace<HostLocationApp>(16);
    sink_ = &apps_.emplace<LocationSink>();
  }

  SimCluster make_sim(std::size_t n_hives) {
    ClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;
    return SimCluster(config, apps_);
  }

  template <typename M>
  void send(SimCluster& sim, HiveId hive, M msg) {
    sim.hive(hive).inject(
        MessageEnvelope::make(std::move(msg), 0, kNoBee, hive, sim.now()));
    sim.run_to_idle();
  }

  AppSet apps_;
  LocationSink* sink_ = nullptr;
};

TEST_F(HostLocationTest, RegisterThenLookupFromAnotherHive) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 0, HostRegister{0xaabb, 7, 3});
  send(sim, 3, HostLookup{0xaabb, 1});
  auto reply = LocationSink::reply(sim, sink_->id(), 1);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->found);
  EXPECT_EQ(reply->sw, 7u);
  EXPECT_EQ(reply->port, 3);
}

TEST_F(HostLocationTest, HostMoveUpdatesLocation) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, HostRegister{0xcc, 1, 1});
  send(sim, 1, HostRegister{0xcc, 9, 5});  // host moved
  send(sim, 0, HostLookup{0xcc, 2});
  auto reply = LocationSink::reply(sim, sink_->id(), 2);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sw, 9u);
  EXPECT_EQ(reply->port, 5);
}

TEST_F(HostLocationTest, UnregisterMakesLookupMiss) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, HostRegister{0xdd, 2, 2});
  send(sim, 1, HostUnregister{0xdd});
  send(sim, 0, HostLookup{0xdd, 3});
  auto reply = LocationSink::reply(sim, sink_->id(), 3);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->found);
}

TEST_F(HostLocationTest, UnknownHostNotFound) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 1, HostLookup{0x404, 4});
  auto reply = LocationSink::reply(sim, sink_->id(), 4);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->found);
}

TEST_F(HostLocationTest, BucketsShardAcrossHives) {
  SimCluster sim = make_sim(4);
  sim.start();
  Xoshiro256 rng(6);
  for (int i = 0; i < 200; ++i) {
    send(sim, static_cast<HiveId>(i % 4),
         HostRegister{rng.next(), static_cast<SwitchId>(i), 1});
  }
  AppId app = apps_.find_by_name("seattle.host_location")->id();
  std::size_t buckets = 0;
  std::set<HiveId> hives;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != app) continue;
    ++buckets;
    hives.insert(rec.hive);
  }
  EXPECT_LE(buckets, 16u);   // at most n_buckets cells
  EXPECT_GE(buckets, 10u);   // 200 random macs cover most buckets
  EXPECT_GT(hives.size(), 1u);  // spread over the cluster
}

TEST_F(HostLocationTest, SameMacAlwaysSameBucketBee) {
  SimCluster sim = make_sim(4);
  sim.start();
  // Register and look up the same MAC from every hive; all operations
  // must serialize through one bee (count its inputs).
  for (HiveId h = 0; h < 4; ++h) {
    send(sim, h, HostRegister{0x77, h, h});
  }
  send(sim, 2, HostLookup{0x77, 9});
  auto reply = LocationSink::reply(sim, sink_->id(), 9);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sw, 3u);  // last writer wins
}

TEST(HostBucketUnit, UpsertFindRemoveRoundTrip) {
  HostBucket bucket;
  bucket.upsert(1, 10, 1);
  bucket.upsert(2, 20, 2);
  bucket.upsert(1, 11, 3);
  ASSERT_NE(bucket.find(1), nullptr);
  EXPECT_EQ(bucket.find(1)->sw, 11u);
  EXPECT_EQ(bucket.entries.size(), 2u);
  HostBucket back = decode_from_bytes<HostBucket>(encode_to_bytes(bucket));
  EXPECT_EQ(back.entries.size(), 2u);
  EXPECT_TRUE(back.remove(1));
  EXPECT_FALSE(back.remove(1));
}

}  // namespace
}  // namespace beehive
