// Tests for the tracing + latency subsystem: trace propagation on the
// envelope wire format, the log-bucketed histogram, span recording across
// a multi-hive simulation, and the Chrome trace-event exporter.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cluster/sim.h"
#include "instrument/collector.h"
#include "instrument/histogram.h"
#include "instrument/metrics.h"
#include "instrument/trace.h"
#include "msg/message.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::CounterQuery;
using testing::CounterValue;
using testing::Incr;
using testing::SinkApp;

// ---------------------------------------------------------------------------
// Envelope trace fields on the wire
// ---------------------------------------------------------------------------

TEST(EnvelopeTrace, FieldsSurviveWireRoundTrip) {
  auto env = MessageEnvelope::make(Incr{"k", 1}, 7, make_bee_id(2, 5), 2,
                                   123 * kMicrosecond);
  env.set_trace(0xABCDEF0123456789ull, 4, 99 * kMicrosecond);
  MessageEnvelope back = MessageEnvelope::from_wire(env.to_wire());
  EXPECT_EQ(back.trace_id(), 0xABCDEF0123456789ull);
  EXPECT_EQ(back.causal_depth(), 4u);
  EXPECT_EQ(back.trace_root_at(), 99 * kMicrosecond);
  EXPECT_EQ(back.as<Incr>().key, "k");
}

TEST(EnvelopeTrace, InheritTraceDeepensByOne) {
  auto cause = MessageEnvelope::make(Incr{"k", 1});
  cause.set_trace(42, 3, 1000);
  auto effect = MessageEnvelope::make(CounterValue{"k", 1});
  effect.inherit_trace(cause);
  EXPECT_EQ(effect.trace_id(), 42u);
  EXPECT_EQ(effect.causal_depth(), 4u);
  EXPECT_EQ(effect.trace_root_at(), 1000);
}

TEST(EnvelopeTrace, HeaderBytesMatchesSerializedSize) {
  // The header constant is what the channel meter accounts per message; it
  // must track the actual serialized layout. With an empty payload the
  // length varint is 1 byte; the amortized constant assumes 2.
  auto empty = MessageEnvelope::make(CounterQuery{""});
  ASSERT_EQ(empty.payload_size(),
            1u);  // one length-prefix byte for the empty key
  EXPECT_EQ(empty.to_wire().size(),
            MessageEnvelope::kFixedHeaderBytes + 1 + empty.payload_size());

  // A payload in [128, 16384) takes a 2-byte length varint: exact match.
  auto big = MessageEnvelope::make(Incr{std::string(300, 'x'), 1});
  ASSERT_GE(big.payload_size(), 128u);
  ASSERT_LT(big.payload_size(), 16384u);
  EXPECT_EQ(big.to_wire().size(),
            MessageEnvelope::kHeaderBytes + big.payload_size());
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ExactBelowSixteen) {
  LatencyHistogram h;
  for (int i = 0; i < 16; ++i) h.record(i);
  EXPECT_EQ(h.count(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(LatencyHistogram::index(i), i);
    EXPECT_EQ(LatencyHistogram::bucket_mid(i), i);
  }
}

TEST(LatencyHistogram, PercentilesOnKnownDistribution) {
  LatencyHistogram h;
  // 100 samples: 90 at 10us, 10 at 1000us.
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_EQ(h.p50(), 10u);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 1000u);
  // p99 lands in 1000's bucket; log-bucketing error is bounded by 1/32.
  EXPECT_NEAR(static_cast<double>(h.p99()), 1000.0, 1000.0 / 16.0);
  EXPECT_NEAR(h.mean(), (90 * 10 + 10 * 1000) / 100.0, 1.0);
}

TEST(LatencyHistogram, RelativeErrorBounded) {
  for (std::uint64_t v : {17ull, 1000ull, 123456ull, 9999999ull}) {
    LatencyHistogram h;
    h.record(static_cast<Duration>(v));
    const double mid = static_cast<double>(h.percentile(1.0));
    EXPECT_LE(std::abs(mid - static_cast<double>(v)),
              static_cast<double>(v) / 16.0)
        << "value " << v;
  }
}

TEST(LatencyHistogram, NegativeAndHugeValuesClamp) {
  LatencyHistogram h;
  h.record(-5);
  h.record(static_cast<Duration>(1) << 60);  // far beyond the top bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_GT(h.percentile(1.0), 1u << 30);
}

TEST(LatencyHistogram, MergeAddsDistributions) {
  LatencyHistogram a, b;
  for (int i = 0; i < 50; ++i) a.record(10);
  for (int i = 0; i < 50; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.p50(), 10u);
  EXPECT_GT(a.p90(), 900u);
}

TEST(LatencyHistogram, CodecRoundTripIsExact) {
  LatencyHistogram h;
  for (Duration v : {0, 1, 15, 16, 17, 1000, 123456, 1 << 30}) h.record(v);
  auto back = decode_from_bytes<LatencyHistogram>(encode_to_bytes(h));
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.p99(), h.p99());
}

TEST(LatencyHistogram, EmptyEncodesSmall) {
  LatencyHistogram h;
  EXPECT_LE(encode_to_bytes(h).size(), 3u);  // sum, max, zero buckets
  auto back = decode_from_bytes<LatencyHistogram>(encode_to_bytes(h));
  EXPECT_EQ(back.count(), 0u);
  EXPECT_EQ(back.p99(), 0u);
}

// ---------------------------------------------------------------------------
// Extended metrics codecs
// ---------------------------------------------------------------------------

TEST(MetricsCodec, SampleCarriesInvocationsAndLatency) {
  BeeMetricsSample s;
  s.bee = make_bee_id(1, 2);
  s.handler_invocations = 17;
  s.handler_failures = 3;
  s.queue_latency.record(25);
  s.queue_latency.record(50);
  s.handler_latency.record(7);
  auto back = decode_from_bytes<BeeMetricsSample>(encode_to_bytes(s));
  EXPECT_EQ(back.handler_invocations, 17u);
  EXPECT_EQ(back.handler_failures, 3u);
  EXPECT_EQ(back.queue_latency, s.queue_latency);
  EXPECT_EQ(back.handler_latency, s.handler_latency);
}

TEST(MetricsCodec, ReportCarriesE2eHistogram) {
  LocalMetricsReport r;
  r.hive = 4;
  r.e2e_latency.record(220);
  r.e2e_latency.record(440);
  r.bees.resize(2);
  r.bees[0].queue_latency.record(11);
  auto back = decode_from_bytes<LocalMetricsReport>(encode_to_bytes(r));
  EXPECT_EQ(back.e2e_latency, r.e2e_latency);
  ASSERT_EQ(back.bees.size(), 2u);
  EXPECT_EQ(back.bees[0].queue_latency, r.bees[0].queue_latency);
}

// ---------------------------------------------------------------------------
// Trace propagation across a 2-hive simulation
// ---------------------------------------------------------------------------

/// Drives a bee onto hive 0, then queries it from hive 1: the query
/// crosses the wire, its reply (CounterValue) crosses back to the sink.
SimCluster traced_two_hive_sim(const AppSet& apps) {
  ClusterConfig config;
  config.n_hives = 2;
  config.tracing = true;
  config.hive.metrics_period = 0;
  return SimCluster(config, apps);
}

TEST(TracePropagation, OneTraceSpansBothHives) {
  AppSet apps;
  apps.emplace<CounterApp>();
  apps.emplace<SinkApp>();
  SimCluster sim = traced_two_hive_sim(apps);
  sim.start();

  // Instantiate the counter bee on hive 0.
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 5}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  // Query from hive 1: message crosses to hive 0, reply fans back out.
  sim.hive(1).inject(
      MessageEnvelope::make(CounterQuery{"k"}, 0, kNoBee, 1, sim.now()));
  sim.run_to_idle();

  auto events = sim.trace_events();
  ASSERT_FALSE(events.empty());

  // Find the query's root: the ingress span on hive 1 for CounterQuery.
  std::uint64_t query_trace = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == SpanKind::kIngress && e.hive == 1 &&
        e.type == msg_type_id<CounterQuery>()) {
      query_trace = e.trace_id;
    }
  }
  ASSERT_NE(query_trace, 0u);

  std::set<HiveId> hives_touched;
  std::uint32_t max_depth = 0;
  TimePoint prev_at = -1;
  bool depth_monotone = true;
  std::uint32_t prev_depth = 0;
  for (const TraceEvent& e : events) {
    if (e.trace_id != query_trace) continue;
    hives_touched.insert(e.hive);
    max_depth = std::max(max_depth, e.depth);
    // Along one trace, causal depth never decreases as (virtual) time
    // advances: each hop schedules strictly later.
    if (prev_at >= 0 && e.at > prev_at && e.depth < prev_depth) {
      depth_monotone = false;
    }
    prev_at = e.at;
    prev_depth = e.depth;
  }
  EXPECT_EQ(hives_touched.size(), 2u) << "trace must span both hives";
  EXPECT_GE(max_depth, 1u) << "the reply hop must deepen the trace";
  EXPECT_TRUE(depth_monotone);
}

TEST(TracePropagation, ChannelSpansArePaired) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim = traced_two_hive_sim(apps);
  sim.start();
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  sim.hive(1).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 1, sim.now()));
  sim.run_to_idle();

  std::set<std::uint64_t> sends, recvs;
  for (const TraceEvent& e : sim.trace_events()) {
    if (e.kind == SpanKind::kChannelSend) sends.insert(e.aux);
    if (e.kind == SpanKind::kChannelRecv) recvs.insert(e.aux);
  }
  ASSERT_FALSE(sends.empty()) << "remote injection must cross the channel";
  EXPECT_EQ(sends, recvs) << "every sent frame must be received";
}

TEST(TracePropagation, DisabledByDefaultRecordsNothing) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  EXPECT_EQ(sim.tracer(0), nullptr);
  EXPECT_TRUE(sim.trace_events().empty());
}

TEST(TracePropagation, DeterministicAcrossRuns) {
  auto run = [](bool tracing) {
    AppSet apps;
    apps.emplace<CounterApp>();
    apps.emplace<SinkApp>();
    ClusterConfig config;
    config.n_hives = 2;
    config.tracing = tracing;
    config.hive.metrics_period = 0;
    SimCluster sim(config, apps);
    sim.start();
    for (int i = 0; i < 20; ++i) {
      sim.hive(i % 2).inject(MessageEnvelope::make(
          Incr{"k" + std::to_string(i % 4), 1}, 0, kNoBee,
          static_cast<HiveId>(i % 2), sim.now()));
      sim.run_for(50 * kMicrosecond);
    }
    sim.hive(1).inject(
        MessageEnvelope::make(CounterQuery{"k0"}, 0, kNoBee, 1, sim.now()));
    sim.run_to_idle();
    struct Result {
      std::uint64_t handler_runs = 0;
      std::uint64_t wire_bytes = 0;
      std::size_t events = 0;
    } r;
    for (HiveId h = 0; h < 2; ++h) {
      r.handler_runs += sim.hive(h).counters().handler_runs;
    }
    r.wire_bytes = sim.meter().total_bytes();
    r.events = sim.trace_events().size();
    return std::make_tuple(r.handler_runs, r.wire_bytes, r.events);
  };

  auto traced1 = run(true);
  auto traced2 = run(true);
  auto untraced = run(false);
  EXPECT_EQ(traced1, traced2) << "tracing must be deterministic";
  // Tracing must not perturb the simulation itself.
  EXPECT_EQ(std::get<0>(traced1), std::get<0>(untraced));
  EXPECT_EQ(std::get<1>(traced1), std::get<1>(untraced));
}

// ---------------------------------------------------------------------------
// Hive-level latency accounting
// ---------------------------------------------------------------------------

TEST(LatencyAccounting, QueueAndE2eRecordedInSim) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 1;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();
  for (int i = 0; i < 10; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();
  // Incr handlers terminate their chains: each run is one e2e sample.
  EXPECT_EQ(sim.hive(0).e2e_latency().count(), 10u);
  EXPECT_EQ(sim.hive(0).queue_latency().count(), 10u);
  // Per-bee window histograms recorded the same runs.
  auto bees = sim.hive(0).local_bees();
  ASSERT_EQ(bees.size(), 1u);
  EXPECT_EQ(bees[0]->total().queue_latency.count(), 10u);
  // Simulator handlers are instantaneous.
  EXPECT_EQ(bees[0]->total().handler_latency.max(), 0u);
}

TEST(LatencyAccounting, CollectorAggregatesInvocationsAndLatency) {
  AppSet apps;
  apps.emplace<CounterApp>();
  apps.emplace<CollectorApp>(std::make_shared<NoopStrategy>(), 2);
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 3 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  // Create the counter bees on hive 0 first...
  for (int k = 0; k < 2; ++k) {
    sim.hive(0).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(k), 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_for(10 * kMillisecond);
  // ...then increment them from hive 1: each message crosses the channel,
  // so its end-to-end latency is at least one wire hop even in virtual
  // time (a message handled on its ingress hive completes instantly).
  for (int i = 0; i < 8; ++i) {
    sim.hive(1).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(i % 2), 1}, 0, kNoBee, 1, sim.now()));
  }
  sim.run_until(2 * kSecond + kMillisecond);

  AppId collector = apps.find_by_name("platform.collector")->id();
  Bee* collector_bee = nullptr;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != collector) continue;
    collector_bee = sim.hive(rec.hive).find_bee(rec.id);
  }
  ASSERT_NE(collector_bee, nullptr);

  ClusterView view = CollectorApp::view_from_store(collector_bee->store(), 2);
  std::uint64_t invocations = 0;
  for (const BeeView& bee : view.bees) {
    invocations += bee.handler_invocations;
  }
  EXPECT_GE(invocations, 8u) << "collector must see every Incr handler run";
  EXPECT_GT(view.latency.e2e_count, 0u);
  // Remote injections cross the registry and channel, so the tail of the
  // distribution is strictly positive even in virtual time.
  EXPECT_GT(view.latency.e2e_p99, 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, and the expected top-level shape.
bool json_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(ChromeTraceExport, GoldenShape) {
  AppSet apps;
  apps.emplace<CounterApp>();
  apps.emplace<SinkApp>();
  SimCluster sim = traced_two_hive_sim(apps);
  sim.start();
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 2}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  sim.hive(1).inject(
      MessageEnvelope::make(CounterQuery{"k"}, 0, kNoBee, 1, sim.now()));
  sim.run_to_idle();

  std::string json = to_chrome_trace(sim.trace_events());
  EXPECT_TRUE(json_balanced(json));
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Metadata tracks for both hives and the synthetic channel process.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"hive 0\""), std::string::npos);
  EXPECT_NE(json.find("\"hive 1\""), std::string::npos);
  EXPECT_NE(json.find("control channel"), std::string::npos);
  // Complete spans for handlers, named after the message type.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("handle test.incr"), std::string::npos);
  EXPECT_NE(json.find("handle test.counter_query"), std::string::npos);
  // Channel transit spans carry the frame kind — since the egress overhaul
  // every wire unit is a batch container.
  EXPECT_NE(json.find("batch"), std::string::npos);
}

TEST(ChromeTraceExport, EmptyEventsStillValid) {
  std::string json = to_chrome_trace({});
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder ring
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RingOverwritesOldest) {
  TraceRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(TraceEvent{static_cast<TimePoint>(i), SpanKind::kIngress, 0,
                          i + 1, 0, kNoBee, 0, 0, 0, 0});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving event is #6 (0-based), in order.
  EXPECT_EQ(events.front().trace_id, 7u);
  EXPECT_EQ(events.back().trace_id, 10u);
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec(8);
  rec.set_enabled(false);
  rec.record(TraceEvent{0, SpanKind::kIngress, 0, 1, 0, kNoBee, 0, 0, 0, 0});
  EXPECT_EQ(rec.size(), 0u);
  rec.set_enabled(true);
  rec.record(TraceEvent{0, SpanKind::kIngress, 0, 1, 0, kNoBee, 0, 0, 0, 0});
  EXPECT_EQ(rec.size(), 1u);
}

}  // namespace
}  // namespace beehive
