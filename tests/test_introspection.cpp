// Tests for the introspection layer: the metrics registry (hot-path
// allocation contract, Prometheus text exposition, time-series rings), the
// latency-histogram edge cases, the explained optimizer decision log, the
// StatusApp query round-trip, the flight recorder and the HTTP exporter.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/sim.h"
#include "instrument/collector.h"
#include "instrument/flight_recorder.h"
#include "instrument/histogram.h"
#include "instrument/registry.h"
#include "instrument/status_app.h"
#include "net/http_export.h"
#include "placement/strategy.h"
#include "tests/test_helpers.h"
#include "util/logging.h"

// ---------------------------------------------------------------------------
// Counting allocator: replaces global operator new for this binary so the
// hot-path tests can assert that metric updates never allocate.
// ---------------------------------------------------------------------------

// The replacements below pair malloc with free correctly, but GCC's
// inliner can't see through the replacement and flags new/free pairs.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
// The nothrow variants must be replaced too: the library (e.g.
// std::stable_sort's temporary buffer) allocates with new(nothrow), and
// releasing that through our malloc-backed delete would mismatch the
// default allocator under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  return std::aligned_alloc(a, rounded == 0 ? a : rounded);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return ::operator new(n, al, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// Registry hot path: O(1), allocation-free updates
// ---------------------------------------------------------------------------

TEST(RegistryHotPath, UpdatesDoNotAllocate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hot_counter", {{"hive", "0"}});
  Gauge& g = reg.gauge("hot_gauge");
  HistogramMetric& h = reg.histogram("hot_hist");
  TimeSeriesRing& ring = reg.ring("hot_ring");

  // Warm up once (first touches of lazily-paged memory are not allocs,
  // but keep the measured region strictly steady-state anyway).
  c.inc();
  g.set(1.0);
  g.add(0.5);
  h.record(123);
  ring.push(0, 1.0);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.inc();
    c += 2;
    ++c;
    g.set(static_cast<double>(i));
    g.add(1.0);
    h.record(i);
    ring.push(i, 2.0);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "metric updates must not allocate on the hot path";

  EXPECT_EQ(c.get(), 1u + 10000u * 4u);
  EXPECT_EQ(h.count(), 10001u);
  EXPECT_EQ(ring.size(), ring.capacity());  // wrapped, still bounded
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(PrometheusText, SanitizesNames) {
  EXPECT_EQ(prometheus_sanitize("already_fine:name"), "already_fine:name");
  EXPECT_EQ(prometheus_sanitize("http.requests-total"),
            "http_requests_total");
  EXPECT_EQ(prometheus_sanitize("2fast"), "_2fast");
  EXPECT_EQ(prometheus_sanitize("a b/c"), "a_b_c");
  EXPECT_EQ(prometheus_sanitize(""), "_");
}

TEST(PrometheusText, ExactCounterAndGaugeLines) {
  MetricsRegistry reg;
  Counter& c = reg.counter("msgs_total", {{"hive", "3"}}, "Messages seen");
  c.inc(5);
  Gauge& g = reg.gauge("depth", {}, "Queue depth");
  g.set(2.5);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP msgs_total Messages seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE msgs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("msgs_total{hive=\"3\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2.5\n"), std::string::npos);
}

TEST(PrometheusText, DirtyFamilyNameIsSanitizedInOutput) {
  MetricsRegistry reg;
  reg.counter("http.requests-total", {{"hive", "1"}}).inc(7);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE http_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("http_requests_total{hive=\"1\"} 7\n"),
            std::string::npos);
  EXPECT_EQ(text.find("http.requests-total"), std::string::npos);
}

TEST(PrometheusText, HistogramRendersCumulativeBuckets) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("lat_us", {}, "Latency");
  h.record(3);
  h.record(3);
  h.record(200);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  // 3us lands above the le=1 bound, inside le=4.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  // 200us is past le=64 (its native bucket's low edge is 200)…
  EXPECT_NE(text.find("lat_us_bucket{le=\"64\"} 2\n"), std::string::npos);
  // …and inside le=256. Buckets are cumulative.
  EXPECT_NE(text.find("lat_us_bucket{le=\"256\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 206\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3\n"), std::string::npos);
}

TEST(PrometheusText, HistogramBucketNotCountedAtBoundItStraddles) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("lat_us", {}, "Latency");
  // 1050us lands in native bucket [1024, 1088), which straddles the
  // le="1024" bound; it must count toward le="4096", not le="1024".
  h.record(1050);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("lat_us_bucket{le=\"1024\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"4096\"} 1\n"), std::string::npos);
}

TEST(PrometheusText, FamilyHeaderPrintsOncePerName) {
  MetricsRegistry reg;
  reg.counter("family_total", {{"hive", "0"}}).inc(1);
  reg.counter("family_total", {{"hive", "1"}}).inc(2);
  const std::string text = reg.prometheus_text();

  std::size_t headers = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE family_total counter", pos)) !=
       std::string::npos;
       ++pos) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("family_total{hive=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("family_total{hive=\"1\"} 2\n"), std::string::npos);
}

TEST(PrometheusText, PullGaugeHonorsCounterSemantics) {
  MetricsRegistry reg;
  reg.gauge_fn("channel_bytes_total", {}, [] { return 4096.0; },
               "Wire bytes", /*counter_semantics=*/true);
  reg.gauge_fn("hotspot_share", {}, [] { return 0.25; });
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE channel_bytes_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("channel_bytes_total 4096\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hotspot_share gauge\n"), std::string::npos);
  EXPECT_NE(text.find("hotspot_share 0.25\n"), std::string::npos);
}

TEST(PrometheusText, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("esc_total", {{"path", "a\"b\\c"}}).inc(1);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\"} 1\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry bookkeeping
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, RegistrationDeduplicatesByNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("c", {{"hive", "0"}});
  Counter& b = reg.counter("c", {{"hive", "0"}});
  Counter& other = reg.counter("c", {{"hive", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc(3);
  EXPECT_EQ(b.get(), 3u);
  EXPECT_EQ(reg.series_count(), 2u);

  Gauge& g1 = reg.gauge("g");
  Gauge& g2 = reg.gauge("g");
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(MetricsRegistry, KindMismatchOnExistingSeriesThrows) {
  MetricsRegistry reg;
  reg.gauge("x", {{"hive", "0"}});
  // Same (name, labels) with a different kind must fail loudly instead of
  // dereferencing the wrong (null) cell pointer.
  EXPECT_THROW(reg.counter("x", {{"hive", "0"}}), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {{"hive", "0"}}), std::logic_error);
  EXPECT_THROW(reg.ring("x", {{"hive", "0"}}), std::logic_error);
  // Different labels are a different series: any kind is fine.
  reg.counter("x", {{"hive", "1"}}).inc(1);
}

TEST(MetricsRegistry, ScrapeCallbacksRunWithoutTheRegistryLock) {
  MetricsRegistry reg;
  reg.counter("plain_total").inc(2);
  // A pull gauge that re-enters the registry during the scrape: with the
  // mutex held across callbacks this self-deadlocks.
  reg.gauge_fn("reentrant", {}, [&reg] {
    return static_cast<double>(reg.series_count());
  });
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("reentrant 2\n"), std::string::npos);
  EXPECT_NE(reg.status_json().find("\"reentrant\": 2"), std::string::npos);
}

TEST(MetricsRegistry, ExposedCounterCellIsRenderedInPlace) {
  MetricsRegistry reg;
  Counter cell;  // externally owned, e.g. a Hive::Counters field
  reg.expose_counter("owned_total", {{"hive", "7"}}, &cell, "External cell");
  cell += 41;
  ++cell;
  EXPECT_EQ(static_cast<std::uint64_t>(cell), 42u);  // drop-in conversions
  EXPECT_NE(reg.prometheus_text().find("owned_total{hive=\"7\"} 42\n"),
            std::string::npos);
}

TEST(MetricsRegistry, StatusJsonCarriesMetricsAndRingSeries) {
  MetricsRegistry reg;
  reg.counter("c_total", {{"hive", "0"}}).inc(9);
  TimeSeriesRing& ring = reg.ring("window_rate", {{"hive", "0"}});
  ring.push(kSecond, 4.0);
  ring.push(2 * kSecond, 6.0);

  const std::string js = reg.status_json();
  EXPECT_NE(js.find("\"c_total,hive=0\": 9"), std::string::npos);
  EXPECT_NE(js.find("\"window_rate,hive=0\""), std::string::npos);
  EXPECT_NE(js.find("\"samples\": [[1000000, 4], [2000000, 6]]"),
            std::string::npos);
  // Rings are /status.json-only; they must not leak into the text format.
  EXPECT_EQ(reg.prometheus_text().find("window_rate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TimeSeriesRing
// ---------------------------------------------------------------------------

TEST(TimeSeriesRingTest, WrapsAndSnapshotsOldestFirst) {
  TimeSeriesRing ring(4);
  for (int i = 1; i <= 6; ++i) {
    ring.push(i * kSecond, static_cast<double>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().at, 3 * kSecond);  // 1 and 2 evicted
  EXPECT_EQ(samples.back().at, 6 * kSecond);
  EXPECT_DOUBLE_EQ(samples.front().value, 3.0);
  EXPECT_DOUBLE_EQ(ring.last(), 6.0);
}

TEST(TimeSeriesRingTest, RatePerSecondAveragesOverSpan) {
  TimeSeriesRing ring(8);
  EXPECT_DOUBLE_EQ(ring.rate_per_second(), 0.0);  // empty
  ring.push(0, 10.0);
  EXPECT_DOUBLE_EQ(ring.rate_per_second(), 0.0);  // single sample
  ring.push(2 * kSecond, 30.0);
  // 40 units over 2 seconds.
  EXPECT_DOUBLE_EQ(ring.rate_per_second(), 20.0);
}

TEST(TimeSeriesRingTest, WireRoundTripPreservesSamplesAndCapacity) {
  TimeSeriesRing ring(3);
  for (int i = 1; i <= 5; ++i) {
    ring.push(i * kMillisecond, i * 1.5);
  }
  TimeSeriesRing back = decode_from_bytes<TimeSeriesRing>(
      encode_to_bytes(ring));
  EXPECT_EQ(back.capacity(), 3u);
  auto a = ring.snapshot();
  auto b = back.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
  }
}

// ---------------------------------------------------------------------------
// LatencyHistogram edge cases
// ---------------------------------------------------------------------------

TEST(LatencyHistogramEdge, EmptyHistogramPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramEdge, HugeValuesClampIntoTopBucket) {
  const auto huge = static_cast<Duration>(std::uint64_t{1} << 40);  // ~13 days
  EXPECT_EQ(LatencyHistogram::index(static_cast<std::uint64_t>(huge)),
            LatencyHistogram::kBuckets - 1);

  LatencyHistogram h;
  h.record(huge);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
  // The exact value survives in sum/max even though the bucket saturates.
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(huge));
  EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(huge));
  // The percentile answers with the top bucket's representative, which is
  // necessarily below the recorded value (clamped), but non-zero.
  EXPECT_GT(h.p50(), 0u);
  EXPECT_LE(h.p50(), static_cast<std::uint64_t>(huge));
}

TEST(LatencyHistogramEdge, MergeIsCommutative) {
  LatencyHistogram a;
  a.record(3);
  a.record(5000);
  a.record(static_cast<Duration>(std::uint64_t{1} << 40));
  LatencyHistogram b;
  b.record(7);
  b.record(120);
  b.record(120);

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.count(), 6u);
  EXPECT_EQ(ab.sum(), a.sum() + b.sum());
}

TEST(LatencyHistogramEdge, SparseWireRoundTripKeepsClampBucket) {
  LatencyHistogram h;
  h.record(0);
  h.record(15);  // last exact bucket
  h.record(16);  // first sub-bucketed octave
  h.record(static_cast<Duration>(std::uint64_t{1} << 40));  // clamp bucket

  LatencyHistogram back =
      decode_from_bytes<LatencyHistogram>(encode_to_bytes(h));
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.count(), 4u);  // recomputed from sparse buckets
  EXPECT_EQ(back.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(back.max(), std::uint64_t{1} << 40);
}

TEST(HistogramMetricTest, MergeAndSnapshotMatchPlainHistogram) {
  LatencyHistogram window;
  window.record(10);
  window.record(300);
  window.record(300);

  HistogramMetric m;
  m.record(42);
  m.merge(window);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_EQ(m.sum(), 42u + 10u + 300u + 300u);

  LatencyHistogram snap = m.snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.bucket_count(LatencyHistogram::index(300)), 2u);
}

// ---------------------------------------------------------------------------
// Explained placement decisions (pure logic + codec)
// ---------------------------------------------------------------------------

ClusterView explained_view(std::uint64_t from_h0, std::uint64_t from_h1) {
  ClusterView view;
  view.n_hives = 2;
  view.hive_cells[0] = 10;
  view.hive_cells[1] = 10;
  BeeView bee;
  bee.bee = make_bee_id(0, 1);
  bee.hive = 0;
  bee.cells = 3;
  bee.msgs_in = from_h0 + from_h1;
  if (from_h0 > 0) bee.inbound_by_hive[0] = from_h0;
  if (from_h1 > 0) bee.inbound_by_hive[1] = from_h1;
  view.bees.push_back(bee);
  return view;
}

TEST(DecideExplained, GreedyRecordsAcceptedMajorityMove) {
  GreedyFollowSources greedy;
  std::vector<PlacementDecision> log;
  auto decisions = greedy.decide_explained(explained_view(10, 90), &log);
  ASSERT_EQ(decisions.size(), 1u);
  ASSERT_EQ(log.size(), 1u);
  const PlacementDecision& d = log[0];
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.reason, "majority");
  EXPECT_EQ(d.from, 0u);
  EXPECT_EQ(d.to, 1u);
  EXPECT_EQ(d.msgs_total, 100u);
  EXPECT_EQ(d.msgs_from_target, 90u);
  EXPECT_DOUBLE_EQ(d.score, 0.9);
  ASSERT_EQ(d.inbound.size(), 2u);  // full traffic-matrix slice retained
}

TEST(DecideExplained, GreedyRecordsLocalMajorityRejection) {
  GreedyFollowSources greedy;
  std::vector<PlacementDecision> log;
  EXPECT_TRUE(greedy.decide_explained(explained_view(90, 10), &log).empty());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].reason, "local_majority");
  EXPECT_EQ(log[0].to, log[0].from);  // no candidate target
}

TEST(DecideExplained, GreedyRecordsCapacityRejection) {
  auto view = explained_view(0, 100);
  view.hive_cells[1] = 99;
  GreedyFollowSources greedy(GreedyConfig{.hive_cell_capacity = 100});
  std::vector<PlacementDecision> log;
  EXPECT_TRUE(greedy.decide_explained(view, &log).empty());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].reason, "capacity");
  EXPECT_EQ(log[0].to, 1u);  // the candidate that lacked room
}

TEST(DecideExplained, BaseImplementationRecordsAcceptedMovesOnly) {
  // RandomStrategy doesn't override decide_explained: the base synthesizes
  // accepted records (reason = strategy name) from decide()'s output.
  RandomStrategy random(/*seed=*/7, /*move_fraction=*/1.0);
  auto view = explained_view(0, 100);
  std::vector<PlacementDecision> log;
  auto decisions = random.decide_explained(view, &log);
  ASSERT_EQ(log.size(), decisions.size());
  for (const PlacementDecision& d : log) {
    EXPECT_TRUE(d.accepted);
    EXPECT_EQ(d.reason, "random");
    EXPECT_EQ(d.from, 0u);
    EXPECT_EQ(d.msgs_total, 100u);
  }
}

TEST(PlacementDecisionCodec, RoundTripsThroughPlacementRound) {
  PlacementRound round;
  round.round = 5;
  round.at = 12 * kSecond;
  round.strategy = "greedy";
  PlacementDecision d;
  d.bee = make_bee_id(1, 9);
  d.from = 1;
  d.to = 2;
  d.accepted = true;
  d.msgs_total = 40;
  d.msgs_from_target = 30;
  d.score = 0.75;
  d.reason = "majority";
  d.inbound = {{0, 10}, {2, 30}};
  round.decisions.push_back(d);
  round.decisions.push_back(PlacementDecision{});  // defaults round-trip too

  PlacementRound back =
      decode_from_bytes<PlacementRound>(encode_to_bytes(round));
  EXPECT_EQ(back.round, 5u);
  EXPECT_EQ(back.at, 12 * kSecond);
  EXPECT_EQ(back.strategy, "greedy");
  ASSERT_EQ(back.decisions.size(), 2u);
  EXPECT_EQ(back.decisions[0].bee, make_bee_id(1, 9));
  EXPECT_EQ(back.decisions[0].to, 2u);
  EXPECT_TRUE(back.decisions[0].accepted);
  EXPECT_EQ(back.decisions[0].reason, "majority");
  EXPECT_DOUBLE_EQ(back.decisions[0].score, 0.75);
  ASSERT_EQ(back.decisions[0].inbound.size(), 2u);
  EXPECT_EQ(back.decisions[0].inbound[1].second, 30u);
  EXPECT_FALSE(back.decisions[1].accepted);
}

// ---------------------------------------------------------------------------
// Cluster wiring: the SimCluster-owned registry exposes per-hive platform
// metrics after a run.
// ---------------------------------------------------------------------------

double metric_value(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(text.c_str() + pos + needle.size());
}

TEST(ClusterIntrospection, SimClusterExposesHiveMetrics) {
  AppSet apps;
  apps.emplace<CounterApp>();

  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 3 * kSecond;
  SimCluster sim(config, apps);
  ASSERT_NE(sim.metrics(), nullptr);
  sim.start();

  for (int i = 0; i < 5; ++i) {
    sim.hive(0).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(i), 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_until(3 * kSecond);
  sim.run_to_idle();

  const std::string text = sim.metrics()->prometheus_text();
  EXPECT_GE(metric_value(text, "beehive_messages_injected_total{hive=\"0\"}"),
            5.0);
  EXPECT_GE(metric_value(text, "beehive_handler_runs_total{hive=\"0\"}"),
            5.0);
  // Gauges are published once per metrics window from the hive thread.
  EXPECT_GE(metric_value(text, "beehive_bees{hive=\"0\"}"), 1.0);
  EXPECT_NE(text.find("# TYPE beehive_e2e_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("beehive_e2e_latency_us_bucket"), std::string::npos);
  // Channel totals ride along as pull-gauges with counter semantics.
  EXPECT_NE(text.find("# TYPE beehive_channel_bytes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("beehive_channel_messages_total"), std::string::npos);

  const std::string js = sim.metrics()->status_json();
  EXPECT_NE(js.find("beehive_handler_runs_window"), std::string::npos);
}

TEST(ClusterIntrospection, MetricsCanBeDisabled) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig config;
  config.n_hives = 1;
  config.metrics = false;
  config.hive.metrics_period = 0;  // no timers: run_to_idle can drain
  SimCluster sim(config, apps);
  EXPECT_EQ(sim.metrics(), nullptr);
  sim.start();
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();  // still runs fine without a registry
}

// ---------------------------------------------------------------------------
// StatusApp: query round-trip under SimCluster
// ---------------------------------------------------------------------------

/// Captures the StatusReport the StatusApp emits, so the test can decode
/// the full snapshot from this sink bee's store.
class ReportSink : public App {
 public:
  static constexpr std::string_view kDict = "rsink";

  ReportSink() : App("test.report_sink") {
    on<StatusReport>(
        [](const StatusReport&) {
          return CellSet::whole_dict(std::string(kDict));
        },
        [](AppContext& ctx, const StatusReport& r) {
          ctx.state().put_as(std::string(kDict), "last", r);
        });
  }
};

TEST(ClusterIntrospection, StatusQueryReturnsPerHiveAndPerBeeRows) {
  AppSet apps;
  apps.emplace<CounterApp>();
  apps.emplace<StatusApp>();
  apps.emplace<ReportSink>();

  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 4 * kSecond;
  SimCluster sim(config, apps);
  sim.start();

  // Spread traffic over several reporting windows so the rate rings fill.
  for (int i = 0; i < 9; ++i) {
    const HiveId h = static_cast<HiveId>(i % 3);
    sim.hive(h).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(i % 3), 1}, 0, kNoBee, h, sim.now()));
    sim.run_for(300 * kMillisecond);
  }
  // Mark a hive suspected (normally the failure detector's job).
  sim.hive(0).inject(MessageEnvelope::make(HiveSuspected{2, sim.now()}, 0,
                                           kNoBee, 0, sim.now()));
  sim.run_until(3500 * kMillisecond);

  sim.hive(0).inject(MessageEnvelope::make(StatusQuery{77}, 0, kNoBee, 0,
                                           sim.now()));
  sim.run_to_idle();

  const AppId sink_app = apps.find_by_name("test.report_sink")->id();
  std::optional<StatusReport> report;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != sink_app) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    ASSERT_NE(bee, nullptr);
    const Dict* dict = bee->store().find_dict(ReportSink::kDict);
    ASSERT_NE(dict, nullptr);
    report = dict->get_as<StatusReport>("last");
  }
  ASSERT_TRUE(report.has_value()) << "no StatusReport reached the sink";

  EXPECT_EQ(report->token, 77u);
  EXPECT_GT(report->at, 0);
  ASSERT_EQ(report->hives.size(), 3u);

  double windowed_msgs = 0.0;
  for (const HiveStatus& hs : report->hives) {
    EXPECT_GT(hs.at, 0);
    EXPECT_GE(hs.bees, 1u);  // at least the platform bees
    EXPECT_GE(hs.msgs_window.size(), 1u);  // rate ring populated
    for (const auto& s : hs.msgs_window.snapshot()) windowed_msgs += s.value;
  }
  EXPECT_GT(windowed_msgs, 0.0) << "windowed rates never folded";

  // Per-bee rows: queue depths are reported and the counter bees saw
  // traffic in at least one window.
  ASSERT_FALSE(report->bees.empty());
  const AppId counter_app = apps.find_by_name("test.counter")->id();
  double counter_msgs = 0.0;
  for (const BeeStatus& bs : report->bees) {
    EXPECT_EQ(bs.queue_depth, 0u);  // everything drained at report time
    if (bs.app != counter_app) continue;
    for (const auto& s : bs.msgs_window.snapshot()) counter_msgs += s.value;
  }
  EXPECT_GT(counter_msgs, 0.0) << "counter bees' windows stayed empty";

  // The injected suspicion is visible both as a set and per-row.
  ASSERT_EQ(report->suspected.size(), 1u);
  EXPECT_EQ(report->suspected[0], 2u);
  for (const HiveStatus& hs : report->hives) {
    EXPECT_EQ(hs.suspected, hs.hive == 2u);
  }

  // The JSON rendering used by /status.json carries the same rows.
  const std::string js = report->to_json();
  EXPECT_NE(js.find("\"token\": 77"), std::string::npos);
  EXPECT_NE(js.find("\"hives\": ["), std::string::npos);
  EXPECT_NE(js.find("\"queue_depth\": 0"), std::string::npos);
  EXPECT_NE(js.find("\"suspected\": true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Decision log end-to-end: a greedy migration in a live cluster leaves an
// explained trail in the collector's store, the trace stream and the
// flight recorder.
// ---------------------------------------------------------------------------

TEST(ClusterIntrospection, DecisionLogExplainsGreedyMigration) {
  struct SourceApp : App {
    SourceApp() : App("test.source", /*pinned=*/true) {
      every_foreach(kSecond / 2, "src",
                    [](AppContext& ctx, const MessageEnvelope&) {
                      for (int i = 0; i < 4; ++i) {
                        ctx.emit(Incr{"hot", 1});
                      }
                    });
      on<Incr>(
          [](const Incr& m) {
            return m.key == "seed" ? CellSet::single("src", "cell")
                                   : CellSet{};
          },
          [](AppContext& ctx, const Incr&) {
            ctx.state().put_as("src", "cell", I64{1});
          });
    }
  };

  AppSet apps;
  apps.emplace<CounterApp>();
  apps.emplace<SourceApp>();
  apps.emplace<CollectorApp>(
      std::make_shared<GreedyFollowSources>(
          GreedyConfig{.majority_fraction = 0.5, .min_messages = 4}),
      3, CollectorConfig{.optimize_period = 2 * kSecond});

  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 12 * kSecond;
  config.tracing = true;
  config.flight_recorder = true;
  SimCluster sim(config, apps);
  sim.start();

  // Seed: the counter bee lands on hive 0; the source bee on hive 2.
  sim.hive(0).inject(MessageEnvelope::make(Incr{"hot", 1}, 0, kNoBee, 0, 0));
  sim.hive(2).inject(MessageEnvelope::make(Incr{"seed", 1}, 0, kNoBee, 2, 0));
  sim.run_until(12 * kSecond);
  sim.run_to_idle();

  // The migration actually happened…
  const AppId counter = apps.find_by_name("test.counter")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == counter) {
      EXPECT_EQ(rec.hive, 2u);
    }
  }

  // …and the decision log explains it. Find the collector bee's store.
  const AppId collector = apps.find_by_name("platform.collector")->id();
  const StateStore* store = nullptr;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != collector) continue;
    store = &sim.hive(rec.hive).find_bee(rec.id)->store();
  }
  ASSERT_NE(store, nullptr);

  auto rounds = CollectorApp::decisions_from_store(*store);
  ASSERT_FALSE(rounds.empty());
  EXPECT_LE(rounds.size(), CollectorApp::kDecisionRoundsKept);
  bool explained = false;
  for (const PlacementRound& round : rounds) {
    EXPECT_EQ(round.strategy, "greedy");
    for (const PlacementDecision& d : round.decisions) {
      if (!d.accepted) continue;
      explained = true;
      EXPECT_EQ(d.to, 2u);
      EXPECT_EQ(d.reason, "majority");
      EXPECT_GE(d.score, 0.5);
      EXPECT_GE(d.msgs_from_target * 2, d.msgs_total);
      EXPECT_FALSE(d.inbound.empty());
    }
  }
  EXPECT_TRUE(explained) << "no accepted decision recorded for the migration";

  // The same decisions show up as trace spans…
  bool decision_span = false;
  for (const TraceEvent& e : sim.trace_events()) {
    if (e.kind != SpanKind::kDecision) continue;
    decision_span = true;
    if (e.aux2 == 1) {
      EXPECT_EQ(e.aux, 2u);  // accepted move targeted hive 2
    }
  }
  EXPECT_TRUE(decision_span);

  // …and in the flight recorder's per-hive ring.
  ASSERT_NE(sim.flight_recorder(), nullptr);
  const std::string flight = sim.flight_recorder()->render("test dump");
  EXPECT_NE(flight.find("test dump"), std::string::npos);
  EXPECT_NE(flight.find("decision bee="), std::string::npos);
  EXPECT_NE(flight.find("accepted reason=majority"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RingsAreBoundedAndRenderOldestFirst) {
  FlightRecorder fr(/*lines_per_hive=*/4);
  for (int i = 0; i < 10; ++i) {
    fr.note(1, "line-" + std::to_string(i));
  }
  fr.note(2, "other-hive");
  EXPECT_EQ(fr.line_count(1), 4u);
  EXPECT_EQ(fr.line_count(2), 1u);
  EXPECT_EQ(fr.line_count(9), 0u);

  const std::string text = fr.render("why not");
  EXPECT_NE(text.find("why not"), std::string::npos);
  EXPECT_EQ(text.find("line-5"), std::string::npos);  // evicted
  const std::size_t p6 = text.find("line-6");  // oldest retained
  const std::size_t p9 = text.find("line-9");
  ASSERT_NE(p6, std::string::npos);
  ASSERT_NE(p9, std::string::npos);
  EXPECT_LT(p6, p9);
  EXPECT_NE(text.find("other-hive"), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesReadableFile) {
  FlightRecorder fr;
  fr.note(0, "before-the-crash");
  const std::string path =
      ::testing::TempDir() + "/beehive_flight_dump_test.txt";
  ASSERT_TRUE(fr.dump(path, "unit test"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("unit test"), std::string::npos);
  EXPECT_NE(ss.str().find("before-the-crash"), std::string::npos);
  EXPECT_FALSE(fr.dump("/nonexistent-dir/x/y.txt", "io error"));
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, CrashDumpPathIsSignalSafeAndWrites) {
  FlightRecorder fr;
  fr.note(3, "last-words");
  const std::string path =
      ::testing::TempDir() + "/beehive_flight_crash_test.txt";
  fr.crash_dump_unsafe(path.c_str(), /*sig=*/6);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("last-words"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, RingTableIsBoundedAndOverflowSharesFirstRing) {
  // The crash handler walks the ring table without locking, so the table
  // must never reallocate: hives beyond max_hives share the first ring.
  FlightRecorder fr(/*lines_per_hive=*/4, /*max_hives=*/2);
  fr.note(10, "hive-ten");
  fr.note(11, "hive-eleven");
  fr.note(12, "hive-twelve-overflow");
  EXPECT_EQ(fr.line_count(10), 2u);  // own line + overflow line
  EXPECT_EQ(fr.line_count(11), 1u);
  EXPECT_EQ(fr.line_count(12), 0u);  // no ring of its own

  const std::string path =
      ::testing::TempDir() + "/beehive_flight_overflow_test.txt";
  fr.crash_dump_unsafe(path.c_str(), /*sig=*/6);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("hive-twelve-overflow"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, TeeLoggerRoutesLogLinesIntoTheRing) {
  FlightRecorder fr;
  fr.tee_logger();
  BH_WARN << "tee-test-line";  // kWarn passes the default level
  Logger::instance().set_sink({});  // restore before asserting
  EXPECT_GE(fr.line_count(0), 1u);  // out-of-handler lines go to hive 0
  EXPECT_NE(fr.render("tee").find("tee-test-line"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logger sink plumbing
// ---------------------------------------------------------------------------

TEST(LoggerTest, PluggableSinkCapturesAndRestores) {
  std::vector<std::string> captured;
  Logger::instance().set_sink([&captured](LogLevel level,
                                          const std::string& line) {
    captured.push_back(std::to_string(static_cast<int>(level)) + ":" + line);
  });
  Logger::instance().set_level(LogLevel::kInfo);
  BH_INFO << "sink-capture-test";
  BH_DEBUG << "below-threshold";  // must be filtered before the sink
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_sink({});

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("sink-capture-test"), std::string::npos);
  EXPECT_EQ(captured[0].find("below-threshold"), std::string::npos);

  // After restore, logging must not reach the old sink.
  BH_WARN << "after-restore";
  EXPECT_EQ(captured.size(), 1u);
}

// ---------------------------------------------------------------------------
// HTTP exposition endpoint
// ---------------------------------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: test\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpExport, ServesMetricsStatusJsonAndNotFound) {
  MetricsRegistry reg;
  reg.counter("beehive_up", {}, "Always 1").inc();
  HttpExportServer server(reg, /*port=*/0);  // ephemeral
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("# TYPE beehive_up counter"), std::string::npos);
  EXPECT_NE(metrics.find("beehive_up 1"), std::string::npos);

  const std::string status = http_get(server.port(), "/status.json");
  EXPECT_EQ(status.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_NE(status.find("\"metrics\""), std::string::npos);
  EXPECT_NE(status.find("beehive_up"), std::string::npos);

  // A StatusApp-style source replaces the default /status.json body.
  server.set_status_source([] { return std::string("{\"custom\": true}\n"); });
  const std::string custom = http_get(server.port(), "/status.json");
  EXPECT_NE(custom.find("\"custom\": true"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u);

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();
}

TEST(HttpExport, HealthEndpointServesSourceOr503) {
  MetricsRegistry reg;
  HttpExportServer server(reg, /*port=*/0);

  // No health source wired: the route exists but answers 503, not 404.
  const std::string before = http_get(server.port(), "/health.json");
  EXPECT_EQ(before.rfind("HTTP/1.0 503", 0), 0u) << before;

  server.set_health_source(
      [] { return std::string("{\"min_score\": 97.5}\n"); });
  const std::string after = http_get(server.port(), "/health.json");
  EXPECT_EQ(after.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_NE(after.find("\"min_score\": 97.5"), std::string::npos);

  // The index advertises all three endpoints.
  const std::string index = http_get(server.port(), "/");
  EXPECT_NE(index.find("/metrics"), std::string::npos);
  EXPECT_NE(index.find("/status.json"), std::string::npos);
  EXPECT_NE(index.find("/health.json"), std::string::npos);
  server.stop();
}

TEST(HttpExport, LateScrapeAfterDetachGets503NotDestroyedRegistry) {
  // Regression: a scraper arriving while (or after) the cluster behind the
  // endpoint is torn down must get a clean 503 — never a read of the
  // destroyed registry. The registry dies *before* the server here, which
  // is exactly the ordering detach() exists for.
  auto registry = std::make_unique<MetricsRegistry>();
  registry->counter("beehive_up", {}, "Always 1").inc();
  HttpExportServer server(*registry, /*port=*/0);
  const std::uint16_t port = server.port();

  // Scrapers hammering every endpoint while the teardown races them.
  std::atomic<bool> scraping{true};
  std::atomic<std::uint64_t> bad_responses{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      const char* paths[] = {"/metrics", "/status.json", "/health.json"};
      while (scraping.load(std::memory_order_relaxed)) {
        const std::string resp = http_get(port, paths[t % 3]);
        // Empty = connection refused/reset (fine once stopped); otherwise
        // only 200 (pre-detach) or 503 (post-detach) are acceptable.
        if (!resp.empty() && resp.rfind("HTTP/1.0 200", 0) != 0 &&
            resp.rfind("HTTP/1.0 503", 0) != 0) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let the scrapers land a few pre-detach hits, then tear down the
  // "cluster": detach first, destroy the registry after.
  while (server.requests_served() < 8) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.detach();
  registry.reset();  // the server must never touch it again

  // The late scraper: a fresh request strictly after destruction.
  const std::string late = http_get(port, "/metrics");
  EXPECT_EQ(late.rfind("HTTP/1.0 503", 0), 0u) << late;
  const std::string late_health = http_get(port, "/health.json");
  EXPECT_EQ(late_health.rfind("HTTP/1.0 503", 0), 0u);
  const std::string late_status = http_get(port, "/status.json");
  EXPECT_EQ(late_status.rfind("HTTP/1.0 503", 0), 0u);

  scraping.store(false, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(bad_responses.load(), 0u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Prometheus HELP/TYPE contract
// ---------------------------------------------------------------------------

TEST(PrometheusText, EveryFamilyGetsHelpAndTypeHeaders) {
  MetricsRegistry reg;
  reg.counter("with_help", {}, "Documented counter.").inc();
  reg.gauge("without_help").set(1);  // no description registered
  reg.counter("second_series_help", {{"hive", "0"}});  // first: helpless
  reg.counter("second_series_help", {{"hive", "1"}},
              "Help on a later series.");
  reg.histogram("hist_no_help").record(5);

  const std::string text = reg.prometheus_text();

  // Round-trip check: walk the exposition line by line — every family's
  // first appearance must be its # HELP line, immediately followed by
  // # TYPE, then only samples of that family until the next family.
  std::istringstream in(text);
  std::string line;
  std::string pending_help_family;
  std::set<std::string> helped, typed;
  while (std::getline(in, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string family =
          line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(pending_help_family.empty())
          << "HELP for " << family << " not followed by TYPE";
      pending_help_family = family;
      helped.insert(family);
    } else if (line.rfind("# TYPE ", 0) == 0) {
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(family, pending_help_family)
          << "TYPE without a preceding HELP for the same family";
      pending_help_family.clear();
      typed.insert(family);
    }
  }
  EXPECT_EQ(helped, typed) << "every family must carry both headers";
  for (const char* family :
       {"with_help", "without_help", "second_series_help", "hist_no_help"}) {
    EXPECT_TRUE(helped.contains(family)) << family << " missing HELP";
  }

  EXPECT_NE(text.find("# HELP with_help Documented counter."),
            std::string::npos);
  // A family whose only help lives on a later series still gets it.
  EXPECT_NE(text.find("# HELP second_series_help Help on a later series."),
            std::string::npos);
  // Helpless families get the explicit placeholder, never a bare TYPE.
  EXPECT_NE(text.find("# HELP without_help (no description registered)"),
            std::string::npos);
}

TEST(PrometheusText, HelpTextEscapesBackslashAndNewline) {
  MetricsRegistry reg;
  reg.counter("tricky", {}, "line one\nline two \\ backslash");
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP tricky line one\\nline two \\\\ backslash"),
            std::string::npos)
      << text;
  // The raw newline must not have split the HELP line.
  EXPECT_EQ(text.find("# HELP tricky line one\nline"), std::string::npos);
}

}  // namespace
}  // namespace beehive
