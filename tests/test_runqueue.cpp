// Property tests for the lock-free run-queue ring (cluster/runqueue.h) and
// the shared-nothing loop built on it (DESIGN.md §12). The concurrency
// tests here are written to run under ThreadSanitizer in the sanitize CI
// job: small rings force wrap-around and the overflow handoff, many small
// operations maximize interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/runqueue.h"
#include "cluster/thread_cluster.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

struct Item {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
};

// -- MpscRing ---------------------------------------------------------------

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, SingleThreadFifoAcrossManyLaps) {
  // A tiny ring, pushed/drained far beyond its capacity: every slot's
  // sequence stamp wraps many times and order must survive every lap.
  MpscRing<int> ring(4);
  std::vector<int> out;
  int next = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    const int n = 1 + lap % 4;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(ring.try_push(next++));
    }
    ring.drain(out, ring.capacity());
  }
  ASSERT_EQ(out.size(), static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, RejectsWhenFullAndRecoversAfterDrain) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), 4u);

  std::vector<int> out;
  EXPECT_EQ(ring.drain(out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_TRUE(ring.try_push(5));
  EXPECT_FALSE(ring.try_push(99));

  out.clear();
  EXPECT_EQ(ring.drain(out, 64), 4u);
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4, 5}));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, DrainDropsCapturedResources) {
  // Slots must not pin moved-out values until the ring laps: the drain
  // resets each slot, so the shared_ptr's count returns to 1 immediately.
  MpscRing<std::shared_ptr<int>> ring(8);
  auto value = std::make_shared<int>(7);
  ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(value)));
  EXPECT_EQ(value.use_count(), 2);
  std::vector<std::shared_ptr<int>> out;
  ring.drain(out, 8);
  out.clear();
  EXPECT_EQ(value.use_count(), 1);
}

TEST(MpscRing, ConcurrentProducersLoseNothingAndKeepPerProducerOrder) {
  // The core MPSC property: with P producers racing into one ring while
  // the consumer drains, every pushed item arrives exactly once and items
  // from the same producer arrive in push order. Ring smaller than the
  // total pushed count, so producers see full-ring rejections and retry —
  // maximum contention on the tail CAS and the slot sequence stamps.
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscRing<Item> ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Item item{p, i};
        while (!ring.try_push(Item{item})) std::this_thread::yield();
      }
    });
  }

  std::vector<Item> got;
  got.reserve(kProducers * kPerProducer);
  while (got.size() < kProducers * kPerProducer) {
    if (ring.drain(got, ring.capacity()) == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.drain(got, ring.capacity()), 0u);

  std::vector<std::uint64_t> next(kProducers, 0);
  for (const Item& item : got) {
    ASSERT_LT(item.producer, kProducers);
    EXPECT_EQ(item.seq, next[item.producer])
        << "producer " << item.producer << " reordered";
    ++next[item.producer];
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer) << "producer " << p << " lost items";
  }
}

// -- RunQueue (ring + overflow handoff) -------------------------------------

TEST(RunQueue, OverflowPreservesSingleProducerFifo) {
  // Push far beyond the ring with no consumer running: the spill must keep
  // global order — once an item overflows, later pushes may not leapfrog
  // it back into the ring.
  RunQueue<int> q(4);
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) q.push(int{i});
  EXPECT_GT(q.overflowed(), 0u);
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kN));

  std::vector<int> out;
  EXPECT_EQ(q.drain(out), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(q.empty());

  // The lane cleared: the ring is lock-free again and order still holds.
  q.push(100);
  q.push(101);
  out.clear();
  EXPECT_EQ(q.drain(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{100, 101}));
}

TEST(RunQueue, ConcurrentOverflowKeepsPerProducerOrder) {
  // Tiny ring + slow consumer: pushes constantly straddle the ring/overflow
  // boundary. Per-producer FIFO must survive the handoff in both
  // directions (ring->overflow when full, back to the ring once drained).
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10'000;
  RunQueue<Item> q(8);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push(Item{p, i});
      }
    });
  }

  std::vector<Item> got;
  got.reserve(kProducers * kPerProducer);
  while (got.size() < kProducers * kPerProducer) {
    if (q.drain(got) == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  q.drain(got);

  std::vector<std::uint64_t> next(kProducers, 0);
  for (const Item& item : got) {
    ASSERT_LT(item.producer, kProducers);
    EXPECT_EQ(item.seq, next[item.producer])
        << "producer " << item.producer << " reordered across the spill";
    ++next[item.producer];
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
  EXPECT_GT(q.overflowed(), 0u) << "test never exercised the spill";
}

// -- wait_idle vs in-flight batches (satellite: quiescence) -----------------

class RunLoopTest : public ::testing::Test {
 protected:
  RunLoopTest() { apps_.emplace<CounterApp>(); }

  ThreadClusterConfig config(std::size_t n_hives, std::size_t ring) {
    ThreadClusterConfig c;
    c.n_hives = n_hives;
    c.hive.metrics_period = 0;
    c.ring_capacity = ring;
    return c;
  }

  AppSet apps_;
};

TEST_F(RunLoopTest, WaitIdleSeesInFlightBatches) {
  // Hammer wait_idle while a producer thread keeps posting: every time
  // wait_idle returns, all work posted *before* the wait began must have
  // executed — including work sitting in a drained-but-still-executing
  // batch, the window the busy flag covers. A tiny ring forces multi-item
  // batches and the overflow path.
  ThreadCluster cluster(config(1, 8), apps_);
  cluster.start();

  std::atomic<std::uint64_t> executed{0};
  constexpr std::uint64_t kRounds = 200;
  constexpr std::uint64_t kPerRound = 50;
  std::uint64_t posted = 0;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint64_t i = 0; i < kPerRound; ++i) {
      cluster.post(0, [&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
      ++posted;
    }
    cluster.wait_idle();
    // The quiescence contract: nothing posted before this wait may still
    // be invisible. (More work may already be executing if another thread
    // posted — there isn't one here, so equality must hold.)
    ASSERT_EQ(executed.load(std::memory_order_relaxed), posted)
        << "wait_idle returned with in-flight work on round " << round;
  }
  cluster.stop();
}

TEST_F(RunLoopTest, WaitIdleUnderConcurrentPosting) {
  // A racing producer makes wait_idle's confirming pass actually loop.
  // After the producer stops, one final wait_idle must observe everything.
  ThreadCluster cluster(config(2, 8), apps_);
  cluster.start();

  std::atomic<std::uint64_t> executed{0};
  constexpr std::uint64_t kTotal = 5'000;
  std::thread producer([&cluster, &executed] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      cluster.post(i % 2 == 0 ? 0 : 1, [&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (int i = 0; i < 50; ++i) cluster.wait_idle();
  producer.join();
  cluster.wait_idle();
  EXPECT_EQ(executed.load(std::memory_order_relaxed), kTotal);
  cluster.stop();
}

TEST_F(RunLoopTest, TinyRingDeliversEveryMessageThroughOverflow) {
  // End-to-end through the hive: a ring far smaller than the burst forces
  // the overflow lane on the real dispatch path; no increment may be lost
  // and the pressure signal must record the spill.
  ThreadCluster cluster(config(1, 4), apps_);
  cluster.start();
  constexpr int kN = 2'000;
  for (int i = 0; i < kN; ++i) {
    cluster.post(0, [&cluster] {
      cluster.hive(0).inject(MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee,
                                                   0, cluster.now()));
    });
  }
  cluster.wait_idle();
  const QueueStats qs = cluster.queue_stats(0);
  EXPECT_GT(qs.drained, static_cast<std::uint64_t>(kN) - 1);
  EXPECT_GT(qs.overflowed, 0u) << "burst never spilled past a 4-slot ring";

  AppId app = apps_.find_by_name("test.counter")->id();
  std::int64_t value = -1;
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    if (rec.app != app) continue;
    if (Bee* bee = cluster.hive(rec.hive).find_bee(rec.id)) {
      if (auto v = bee->store().dict(CounterApp::kDict).get_as<I64>("k")) {
        value = v->v;
      }
    }
  }
  cluster.stop();
  EXPECT_EQ(value, kN);
}

TEST_F(RunLoopTest, PinnedLoopsStillDeliver) {
  // pin_cpu is best-effort placement, never correctness: with pinning on
  // (wrapping around however few cores the machine has), traffic flows
  // exactly as unpinned.
  ThreadClusterConfig c = config(2, 1024);
  c.hive.pin_cpu = 0;
  ThreadCluster cluster(c, apps_);
  cluster.start();
  for (int i = 0; i < 100; ++i) {
    cluster.post(i % 2 == 0 ? 0 : 1, [&cluster, i] {
      const HiveId h = i % 2 == 0 ? 0 : 1;
      cluster.hive(h).inject(MessageEnvelope::make(Incr{"p", 1}, 0, kNoBee,
                                                   h, cluster.now()));
    });
  }
  cluster.wait_idle();
  std::uint64_t runs = 0;
  for (HiveId h = 0; h < 2; ++h) {
    runs += cluster.hive(h).counters().handler_runs;
  }
  cluster.stop();
  EXPECT_EQ(runs, 100u);
}

TEST_F(RunLoopTest, RingWatermarkSurfacesInQueueStats) {
  ThreadCluster cluster(config(1, 64), apps_);
  cluster.start();
  // Park the loop briefly so a burst piles into the ring, then measure.
  std::atomic<bool> release{false};
  cluster.post(0, [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 32; ++i) {
    cluster.post(0, [] {});
  }
  release.store(true, std::memory_order_release);
  cluster.wait_idle();
  const QueueStats qs = cluster.queue_stats(0);
  EXPECT_GE(qs.ring_hwm, 32u);
  cluster.stop();
}

}  // namespace
}  // namespace beehive
