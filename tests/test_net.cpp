// Unit tests for the network substrate: tree topology, simulated switches,
// fabric and the OpenFlow driver app on a live cluster.
#include <gtest/gtest.h>

#include "apps/messages.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "net/driver.h"
#include "net/fabric.h"
#include "net/switch_sim.h"
#include "net/topology.h"

namespace beehive {
namespace {

// ---------------------------------------------------------------------------
// TreeTopology
// ---------------------------------------------------------------------------

TEST(TreeTopology, LinkCountIsNMinusOne) {
  TreeTopology topo(400, 4, 40);
  EXPECT_EQ(topo.links().size(), 399u);
}

TEST(TreeTopology, ParentChildConsistency) {
  TreeTopology topo(50, 3, 5);
  for (SwitchId sw = 0; sw < 50; ++sw) {
    for (SwitchId child : topo.children(sw)) {
      EXPECT_EQ(topo.parent(child), sw);
    }
  }
  EXPECT_EQ(topo.parent(0), 0u);  // root
}

TEST(TreeTopology, DepthIncreasesFromRoot) {
  TreeTopology topo(40, 2, 4);
  EXPECT_EQ(topo.depth(0), 0u);
  EXPECT_EQ(topo.depth(1), 1u);
  EXPECT_EQ(topo.depth(2), 1u);
  EXPECT_EQ(topo.depth(3), 2u);
  for (SwitchId sw = 1; sw < 40; ++sw) {
    EXPECT_EQ(topo.depth(sw), topo.depth(topo.parent(sw)) + 1);
  }
}

TEST(TreeTopology, MasterAssignmentIsBalanced) {
  TreeTopology topo(400, 4, 40);
  for (HiveId h = 0; h < 40; ++h) {
    EXPECT_EQ(topo.switches_of(h).size(), 10u) << "hive " << h;
  }
  // Contiguous blocks.
  EXPECT_EQ(topo.master_hive(0), 0u);
  EXPECT_EQ(topo.master_hive(9), 0u);
  EXPECT_EQ(topo.master_hive(10), 1u);
  EXPECT_EQ(topo.master_hive(399), 39u);
}

TEST(TreeTopology, PathConnectsEndpoints) {
  TreeTopology topo(40, 2, 4);
  auto path = topo.path(17, 23);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 17u);
  EXPECT_EQ(path.back(), 23u);
  // Consecutive path nodes are parent/child pairs.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool adjacent = topo.parent(path[i]) == path[i + 1] ||
                    topo.parent(path[i + 1]) == path[i];
    EXPECT_TRUE(adjacent) << path[i] << " - " << path[i + 1];
  }
}

TEST(TreeTopology, PathToSelfIsSingleton) {
  TreeTopology topo(10, 2, 2);
  auto path = topo.path(5, 5);
  EXPECT_EQ(path, std::vector<SwitchId>{5});
}

TEST(TreeTopology, LinksOfLeafIsUplinkOnly) {
  TreeTopology topo(7, 2, 2);  // full binary tree, leaves 3..6
  auto links = topo.links_of(6);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].a, topo.parent(6));
  EXPECT_EQ(links[0].b, 6u);
}

// ---------------------------------------------------------------------------
// SimSwitch
// ---------------------------------------------------------------------------

class SimSwitchTest : public ::testing::Test {
 protected:
  SwitchConfig config_{.n_flows = 100,
                       .delta_kbps = 1000.0,
                       .frac_above = 0.10,
                       .noise_amplitude = 0.10,
                       .reroute_factor = 0.45};
  Xoshiro256 rng_{99};
};

TEST_F(SimSwitchTest, TenPercentOfFlowsRunHot) {
  SimSwitch sw(1, config_, rng_);
  EXPECT_EQ(sw.n_flows(), 100u);
  EXPECT_EQ(sw.flows_above_threshold(kSecond), 10u);
}

TEST_F(SimSwitchTest, StatsReportAllFlows) {
  SimSwitch sw(1, config_, rng_);
  auto stats = sw.stats(5 * kSecond);
  ASSERT_EQ(stats.size(), 100u);
  std::size_t above = 0;
  for (const FlowStat& s : stats) {
    EXPECT_GT(s.rate_kbps, 0.0);
    if (s.rate_kbps > config_.delta_kbps) ++above;
  }
  EXPECT_EQ(above, 10u);
}

TEST_F(SimSwitchTest, RatesAreDeterministicPerSecondBucket) {
  SimSwitch sw(1, config_, rng_);
  const SimFlow* flow = sw.flow(0);
  ASSERT_NE(flow, nullptr);
  double r1 = sw.effective_rate_kbps(*flow, 2 * kSecond + 100);
  double r2 = sw.effective_rate_kbps(*flow, 2 * kSecond + 900 * kMillisecond);
  EXPECT_DOUBLE_EQ(r1, r2);  // same bucket
  // Noise varies across buckets (almost surely).
  double r3 = sw.effective_rate_kbps(*flow, 3 * kSecond);
  EXPECT_NE(r1, r3);
}

TEST_F(SimSwitchTest, FlowModCoolsTheFlowDown) {
  SimSwitch sw(1, config_, rng_);
  // Flow 0 is a hot flow by construction.
  const SimFlow* flow = sw.flow(0);
  double before = sw.effective_rate_kbps(*flow, kSecond);
  ASSERT_GT(before, config_.delta_kbps);
  EXPECT_TRUE(sw.apply_flow_mod(0, 2));
  double after = sw.effective_rate_kbps(*sw.flow(0), kSecond);
  EXPECT_LT(after, config_.delta_kbps);
  EXPECT_EQ(sw.flow_mods_applied(), 1u);
  EXPECT_EQ(sw.flow(0)->path, 2u);
}

TEST_F(SimSwitchTest, FlowModUnknownFlowFails) {
  SimSwitch sw(1, config_, rng_);
  EXPECT_FALSE(sw.apply_flow_mod(100, 1));
  EXPECT_EQ(sw.flow_mods_applied(), 0u);
}

TEST_F(SimSwitchTest, CumulativeBytesGrowWithTime) {
  SimSwitch sw(1, config_, rng_);
  auto early = sw.stats(kSecond);
  auto late = sw.stats(10 * kSecond);
  EXPECT_GT(late[0].bytes, early[0].bytes);
}

// ---------------------------------------------------------------------------
// Fabric + driver on a live cluster
// ---------------------------------------------------------------------------

class DriverTest : public ::testing::Test {
 protected:
  DriverTest()
      : fabric_(TreeTopology(20, 4, 4), FabricConfig{}) {
    apps_.emplace<OpenFlowDriverApp>(&fabric_);
  }

  NetworkFabric fabric_;
  AppSet apps_;
};

TEST_F(DriverTest, ConnectCreatesPinnedDriverBeesOnMasters) {
  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps_);
  sim.start();
  fabric_.connect_all([&sim](HiveId h, MessageEnvelope m) {
    sim.hive(h).inject(std::move(m));
  });
  sim.run_to_idle();

  EXPECT_EQ(sim.registry().live_bee_count(), 20u);
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    EXPECT_TRUE(rec.pinned);
    ASSERT_EQ(rec.cells.size(), 1u);
    SwitchId sw = static_cast<SwitchId>(
        std::stoul(rec.cells.front().key));
    EXPECT_EQ(rec.hive, fabric_.topology().master_hive(sw));
  }
}

TEST_F(DriverTest, QueryReplyRoundTripThroughDriver) {
  // A probe app that queries switch 7 and records the reply size.
  struct ProbeApp : App {
    explicit ProbeApp() : App("test.probe") {
      on<FlowStatReply>(
          [](const FlowStatReply& m) {
            return CellSet::single("probe", switch_key(m.sw));
          },
          [](AppContext& ctx, const FlowStatReply& m) {
            ctx.state().put_as(
                "probe", switch_key(m.sw),
                FlowStatReply{m.sw, m.stats});
          });
    }
  };
  apps_.emplace<ProbeApp>();

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps_);
  sim.start();
  fabric_.connect_all([&sim](HiveId h, MessageEnvelope m) {
    sim.hive(h).inject(std::move(m));
  });
  sim.run_to_idle();

  // Query from a non-master hive: driver answers from the master.
  sim.hive(0).inject(
      MessageEnvelope::make(FlowStatQuery{7}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();

  AppId probe = apps_.find_by_name("test.probe")->id();
  bool found = false;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != probe) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    ASSERT_NE(bee, nullptr);
    auto reply = bee->store().dict("probe").get_as<FlowStatReply>("7");
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->stats.size(), fabric_.sw(7).n_flows());
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DriverTest, FlowModReachesTheSwitch) {
  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps_);
  sim.start();
  fabric_.connect_all([&sim](HiveId h, MessageEnvelope m) {
    sim.hive(h).inject(std::move(m));
  });
  sim.run_to_idle();

  sim.hive(2).inject(
      MessageEnvelope::make(FlowMod{13, 5, 1}, 0, kNoBee, 2, sim.now()));
  sim.run_to_idle();
  EXPECT_EQ(fabric_.sw(13).flow_mods_applied(), 1u);
  EXPECT_EQ(fabric_.sw(13).flow(5)->path, 1u);
  EXPECT_EQ(fabric_.total_flow_mods(), 1u);
}

TEST_F(DriverTest, QueryBeforeJoinIsDropped) {
  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps_);
  sim.start();
  // No connect_all: the driver has no state for switch 3.
  sim.hive(0).inject(
      MessageEnvelope::make(FlowStatQuery{3}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  // No crash, no reply; a driver bee exists (created by the resolve) but
  // holds no switch record.
  EXPECT_EQ(sim.hive(0).counters().handler_failures, 0u);
}

TEST_F(DriverTest, PuntPacketArrivesAtMaster) {
  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps_);
  sim.start();
  fabric_.punt_packet(15, 0xa, 0xb, 3,
                      [&sim](HiveId h, MessageEnvelope m) {
                        EXPECT_EQ(h, sim.hive(3).id());
                        sim.hive(h).inject(std::move(m));
                      },
                      sim.now());
  sim.run_to_idle();
}

}  // namespace
}  // namespace beehive
