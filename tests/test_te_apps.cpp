// Behavioural tests of the Traffic Engineering applications themselves:
// the Figure 2 pipeline (Init/Query/Collect/Route), alarm hysteresis in
// the decoupled design, and the discovery app feeding topology.
#include <gtest/gtest.h>

#include <memory>

#include "apps/discovery.h"
#include "apps/te_common.h"
#include "apps/te_decoupled.h"
#include "apps/te_naive.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "net/driver.h"
#include "net/fabric.h"

namespace beehive {
namespace {

// ---------------------------------------------------------------------------
// Value-type units
// ---------------------------------------------------------------------------

TEST(FlowSeriesEntryUnit, FlagUnflagAndCodec) {
  FlowSeriesEntry entry;
  entry.sw = 9;
  entry.samples = 3;
  entry.latest.push_back({1, 1500.0, 4096});
  entry.flag(1);
  entry.flag(1);
  entry.flag(7);
  EXPECT_TRUE(entry.is_flagged(1));
  EXPECT_FALSE(entry.is_flagged(2));
  EXPECT_EQ(entry.flagged.size(), 2u);
  entry.unflag(1);
  EXPECT_FALSE(entry.is_flagged(1));

  FlowSeriesEntry back =
      decode_from_bytes<FlowSeriesEntry>(encode_to_bytes(entry));
  EXPECT_EQ(back.sw, 9u);
  EXPECT_EQ(back.samples, 3u);
  ASSERT_EQ(back.latest.size(), 1u);
  EXPECT_DOUBLE_EQ(back.latest[0].rate_kbps, 1500.0);
  EXPECT_EQ(back.flagged, std::vector<std::uint32_t>{7});
}

TEST(RouteLedgerUnit, Codec) {
  RouteLedger ledger{12, 34};
  RouteLedger back = decode_from_bytes<RouteLedger>(encode_to_bytes(ledger));
  EXPECT_EQ(back.alarms_seen, 12u);
  EXPECT_EQ(back.flow_mods_emitted, 34u);
}

// ---------------------------------------------------------------------------
// End-to-end TE pipelines on a small simulated network
// ---------------------------------------------------------------------------

class TEPipeline : public ::testing::Test {
 protected:
  static constexpr std::size_t kHives = 4;
  static constexpr std::size_t kSwitches = 12;

  TEPipeline()
      : topology_(kSwitches, 3, kHives), fabric_(TreeTopology(topology_)) {}

  std::unique_ptr<SimCluster> run(AppSet& apps, Duration duration) {
    ClusterConfig config;
    config.n_hives = kHives;
    config.hive.metrics_period = 0;
    config.hive.timers_until = duration;
    auto sim = std::make_unique<SimCluster>(config, apps);
    sim->start();
    fabric_.connect_all([&sim](HiveId hive, MessageEnvelope env) {
      sim->hive(hive).inject(std::move(env));
    });
    sim->run_until(duration);
    sim->run_to_idle();
    return sim;
  }

  TreeTopology topology_;
  NetworkFabric fabric_;
};

TEST_F(TEPipeline, NaiveInitializesEverySwitchAndReroutesHotFlows) {
  AppSet apps;
  apps.emplace<OpenFlowDriverApp>(&fabric_);
  apps.emplace<DiscoveryApp>(&topology_);
  apps.emplace<TENaiveApp>();
  auto sim_ptr = run(apps, 5 * kSecond);
  SimCluster& sim = *sim_ptr;

  // All stat cells collapsed onto the single Route bee; its S dict holds
  // one series per switch, each with several samples.
  AppId te = apps.find_by_name("te.naive")->id();
  std::size_t te_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != te) continue;
    ++te_bees;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    ASSERT_NE(bee, nullptr);
    const Dict* stats = bee->store().find_dict(TENaiveApp::kStatsDict);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->size(), kSwitches);
    stats->for_each([](const std::string&, const Bytes& v) {
      FlowSeriesEntry entry = decode_from_bytes<FlowSeriesEntry>(v);
      EXPECT_GE(entry.samples, 2u);
    });
    // Topology arrived too (links shared with Route's whole-T map).
    const Dict* topo = bee->store().find_dict(TENaiveApp::kTopoDict);
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->size(), kSwitches - 1);
  }
  EXPECT_EQ(te_bees, 1u);
  // Every hot flow got re-routed exactly once: 10% of 100 per switch.
  EXPECT_EQ(fabric_.total_flow_mods(), kSwitches * 10);
}

TEST_F(TEPipeline, DecoupledKeepsStatCellsOnMasters) {
  AppSet apps;
  apps.emplace<OpenFlowDriverApp>(&fabric_);
  apps.emplace<DiscoveryApp>(&topology_);
  apps.emplace<TEDecoupledApp>();
  auto sim_ptr = run(apps, 5 * kSecond);
  SimCluster& sim = *sim_ptr;

  AppId te = apps.find_by_name("te.decoupled")->id();
  std::size_t stat_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != te) continue;
    for (const CellKey& cell : rec.cells) {
      if (cell.dict == TEDecoupledApp::kStatsDict && !cell.is_whole_dict()) {
        ++stat_bees;
        // The stat cell for switch sw sits on sw's master hive.
        auto sw = static_cast<SwitchId>(std::stoul(cell.key));
        EXPECT_EQ(rec.hive, topology_.master_hive(sw)) << "switch " << sw;
      }
    }
  }
  EXPECT_EQ(stat_bees, kSwitches);
  EXPECT_EQ(fabric_.total_flow_mods(), kSwitches * 10);
}

TEST_F(TEPipeline, DecoupledRouteLedgerCountsAlarms) {
  AppSet apps;
  apps.emplace<OpenFlowDriverApp>(&fabric_);
  apps.emplace<DiscoveryApp>(&topology_);
  apps.emplace<TEDecoupledApp>();
  auto sim_ptr = run(apps, 5 * kSecond);
  SimCluster& sim = *sim_ptr;

  AppId te = apps.find_by_name("te.decoupled")->id();
  bool found_ledger = false;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != te) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    if (bee == nullptr) continue;
    const Dict* route = bee->store().find_dict(TEDecoupledApp::kRouteDict);
    if (route == nullptr || route->empty()) continue;
    auto ledger = route->get_as<RouteLedger>("ledger");
    ASSERT_TRUE(ledger.has_value());
    EXPECT_GE(ledger->alarms_seen, kSwitches * 10);
    EXPECT_EQ(ledger->flow_mods_emitted, ledger->alarms_seen);
    found_ledger = true;
  }
  EXPECT_TRUE(found_ledger);
}

TEST_F(TEPipeline, RerouteActuallyCoolsTheNetwork) {
  AppSet apps;
  apps.emplace<OpenFlowDriverApp>(&fabric_);
  apps.emplace<DiscoveryApp>(&topology_);
  apps.emplace<TEDecoupledApp>();
  auto sim_ptr = run(apps, 6 * kSecond);
  SimCluster& sim = *sim_ptr;

  // After the control loop has acted, (almost) no flow should still be
  // above the threshold: the reroute factor drops hot flows below delta.
  EXPECT_LE(fabric_.total_flows_above_threshold(sim.now()),
            kSwitches);  // allow noise-edge stragglers
}

TEST_F(TEPipeline, DiscoveryAnnouncesEachUplinkOnce) {
  AppSet apps;
  apps.emplace<OpenFlowDriverApp>(&fabric_);
  apps.emplace<DiscoveryApp>(&topology_);
  apps.emplace<TENaiveApp>();
  auto sim_ptr = run(apps, 3 * kSecond);
  SimCluster& sim = *sim_ptr;

  // The naive Route bee holds T: exactly one entry per tree link, even
  // though SwitchJoined may be re-emitted on reconnects.
  fabric_.connect(5, [&sim](HiveId hive, MessageEnvelope env) {
    sim.hive(hive).inject(std::move(env));
  });
  sim.run_to_idle();

  AppId te = apps.find_by_name("te.naive")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != te) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    const Dict* topo = bee->store().find_dict(TENaiveApp::kTopoDict);
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->size(), kSwitches - 1);
  }
}

TEST_F(TEPipeline, BehaviourPreservedAcrossClusterSizes) {
  // Invariant 6 on the real application: the number of FlowMods applied is
  // the same whether TE runs on 1 hive or on 4.
  auto flow_mods_with_hives = [this](std::size_t n_hives) {
    AppSet apps;
    TreeTopology topo(kSwitches, 3, n_hives);
    NetworkFabric fabric{TreeTopology(topo)};
    apps.emplace<OpenFlowDriverApp>(&fabric);
    apps.emplace<DiscoveryApp>(&topo);
    apps.emplace<TEDecoupledApp>();
    ClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;
    config.hive.timers_until = 5 * kSecond;
    SimCluster sim(config, apps);
    sim.start();
    fabric.connect_all([&sim](HiveId hive, MessageEnvelope env) {
      sim.hive(hive).inject(std::move(env));
    });
    sim.run_until(5 * kSecond);
    sim.run_to_idle();
    return fabric.total_flow_mods();
  };
  EXPECT_EQ(flow_mods_with_hives(1), flow_mods_with_hives(4));
}

}  // namespace
}  // namespace beehive
