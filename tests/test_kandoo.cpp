// Tests for the Kandoo emulation: local elephant detection + centralized
// re-routing (paper §1/§4).
#include <gtest/gtest.h>

#include <memory>

#include "apps/kandoo_elephant.h"
#include "cluster/sim.h"
#include "core/context.h"
#include "net/driver.h"
#include "net/fabric.h"

namespace beehive {
namespace {

class KandooTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kHives = 4;
  static constexpr std::size_t kSwitches = 16;

  KandooTest()
      : topology_(kSwitches, 4, kHives), fabric_(TreeTopology(topology_)) {
    apps_.emplace<OpenFlowDriverApp>(&fabric_);
    apps_.emplace<ElephantDetectorApp>();
    apps_.emplace<ElephantRerouteApp>();
  }

  std::unique_ptr<SimCluster> run(Duration duration) {
    ClusterConfig config;
    config.n_hives = kHives;
    config.hive.metrics_period = 0;
    config.hive.timers_until = duration;
    auto sim = std::make_unique<SimCluster>(config, apps_);
    sim->start();
    fabric_.connect_all([&sim](HiveId hive, MessageEnvelope env) {
      sim->hive(hive).inject(std::move(env));
    });
    sim->run_until(duration);
    sim->run_to_idle();
    return sim;
  }

  TreeTopology topology_;
  NetworkFabric fabric_;
  AppSet apps_;
};

TEST_F(KandooTest, DetectorBeesAreLocalToSwitchMasters) {
  auto sim_ptr = run(4 * kSecond);
  SimCluster& sim = *sim_ptr;
  AppId detect = apps_.find_by_name("kandoo.detect")->id();
  std::size_t detector_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != detect) continue;
    ++detector_bees;
    ASSERT_EQ(rec.cells.size(), 1u);
    auto sw = static_cast<SwitchId>(std::stoul(rec.cells.front().key));
    EXPECT_EQ(rec.hive, topology_.master_hive(sw));
  }
  EXPECT_EQ(detector_bees, kSwitches);
}

TEST_F(KandooTest, RootAppIsOneCentralizedBee) {
  auto sim_ptr = run(4 * kSecond);
  SimCluster& sim = *sim_ptr;
  AppId reroute = apps_.find_by_name("kandoo.reroute")->id();
  std::size_t root_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == reroute) ++root_bees;
  }
  EXPECT_EQ(root_bees, 1u);
}

TEST_F(KandooTest, ElephantsAreDetectedAndRerouted) {
  auto sim_ptr = run(5 * kSecond);
  SimCluster& sim = *sim_ptr;
  // 10% of 100 flows per switch run above the threshold: each must be
  // re-routed exactly once via detector -> root -> driver.
  EXPECT_EQ(fabric_.total_flow_mods(), kSwitches * 10);
  AppId reroute = apps_.find_by_name("kandoo.reroute")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != reroute) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    ASSERT_NE(bee, nullptr);
    auto ledger = bee->store()
                      .dict(ElephantRerouteApp::kDict)
                      .get_as<RouteLedger>("ledger");
    ASSERT_TRUE(ledger.has_value());
    EXPECT_EQ(ledger->alarms_seen, kSwitches * 10);
  }
}

TEST_F(KandooTest, StatsTrafficStaysLocal) {
  // Run long enough that the steady-state polling dominates the one-off
  // elephant burst of the first seconds.
  auto sim_ptr = run(20 * kSecond);
  SimCluster& sim = *sim_ptr;
  // The frequent query/reply pairs all stay on the masters; only the rare
  // elephant events (and their FlowMods) cross hives.
  std::uint64_t local = 0, remote = 0;
  for (HiveId h = 0; h < kHives; ++h) {
    local += sim.hive(h).counters().routed_local;
    remote += sim.hive(h).counters().routed_remote;
  }
  EXPECT_GT(local, remote * 2);
}

}  // namespace
}  // namespace beehive
