// Tests for the OpenFlow 1.0 wire codec: round trips, exact layout checks
// against the spec, malformed-input rejection, stream reassembly under
// arbitrary chunking, and the bridge to the platform's logical messages.
#include <gtest/gtest.h>

#include "net/openflow.h"
#include "util/rng.h"

namespace beehive::of {
namespace {

// ---------------------------------------------------------------------------
// Header & layout
// ---------------------------------------------------------------------------

TEST(OfHeader, HelloLayoutMatchesSpec) {
  Bytes wire = encode(HelloMsg{0x01020304});
  ASSERT_EQ(wire.size(), 8u);  // header only
  EXPECT_EQ(static_cast<std::uint8_t>(wire[0]), 0x01);  // version
  EXPECT_EQ(static_cast<std::uint8_t>(wire[1]), 0x00);  // OFPT_HELLO
  EXPECT_EQ(static_cast<std::uint8_t>(wire[2]), 0x00);  // length hi
  EXPECT_EQ(static_cast<std::uint8_t>(wire[3]), 0x08);  // length lo
  // xid big-endian
  EXPECT_EQ(static_cast<std::uint8_t>(wire[4]), 0x01);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[7]), 0x04);
}

TEST(OfHeader, DecodeHeaderFields) {
  Bytes wire = encode(EchoMsg{77, /*reply=*/true, "ping"});
  Header h = decode_header(wire);
  EXPECT_EQ(h.version, kVersion);
  EXPECT_EQ(h.type, MsgType::kEchoReply);
  EXPECT_EQ(h.length, 12u);
  EXPECT_EQ(h.xid, 77u);
}

TEST(OfHeader, RejectsBadVersionAndShortHeader) {
  Bytes wire = encode(HelloMsg{1});
  wire[0] = 0x04;  // OpenFlow 1.3
  EXPECT_THROW(decode_header(wire), ParseError);
  EXPECT_THROW(decode_header("abc"), ParseError);
  Bytes tiny = encode(HelloMsg{1});
  tiny[3] = 0x03;  // length < 8
  EXPECT_THROW(decode_header(tiny), ParseError);
}

TEST(OfFlowMod, FixedPartIs72Bytes) {
  // Spec: ofp_flow_mod without actions = 72 bytes (8 header + 40 match +
  // 24 body).
  FlowModMsg m;
  EXPECT_EQ(encode(m).size(), 72u);
  m.actions.push_back({3, 0xffff});
  EXPECT_EQ(encode(m).size(), 80u);  // + one 8-byte output action
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(OfRoundTrip, Echo) {
  EchoMsg m{42, false, Bytes("\x01\x02\x03", 3)};
  Message back = decode(encode(m));
  ASSERT_TRUE(back.echo.has_value());
  EXPECT_EQ(*back.echo, m);
  EXPECT_EQ(back.header.type, MsgType::kEchoRequest);
}

TEST(OfRoundTrip, FlowModAllFields) {
  FlowModMsg m;
  m.xid = 9;
  m.cookie = 0x1122334455667788ull;
  m.command = FlowModCommand::kDeleteStrict;
  m.idle_timeout = 30;
  m.hard_timeout = 300;
  m.priority = 0x1234;
  m.match.wildcards = 0x300;
  m.match.in_port = 7;
  m.match.dl_src = {1, 2, 3, 4, 5, 6};
  m.match.dl_dst = {0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  m.match.dl_type = 0x0800;
  m.match.nw_src = 0x0a000001;
  m.match.nw_dst = 0x0a000002;
  m.match.tp_src = 80;
  m.match.tp_dst = 443;
  m.actions.push_back({1, 64});
  m.actions.push_back({2, 128});

  Message back = decode(encode(m));
  ASSERT_TRUE(back.flow_mod.has_value());
  EXPECT_EQ(*back.flow_mod, m);
}

TEST(OfRoundTrip, PacketInWithPayload) {
  PacketInMsg m;
  m.xid = 5;
  m.buffer_id = 0x1000;
  m.in_port = 3;
  m.reason = 1;  // OFPR_ACTION
  m.payload = Bytes(100, '\x5a');
  Message back = decode(encode(m));
  ASSERT_TRUE(back.packet_in.has_value());
  EXPECT_EQ(*back.packet_in, m);
}

TEST(OfRoundTrip, PacketOutWithActionsAndPayload) {
  PacketOutMsg m;
  m.xid = 6;
  m.in_port = 2;
  m.actions.push_back({0xfffb, 0xffff});  // OFPP_FLOOD
  m.payload = Bytes("frame-bytes");
  Message back = decode(encode(m));
  ASSERT_TRUE(back.packet_out.has_value());
  EXPECT_EQ(*back.packet_out, m);
}

TEST(OfRoundTrip, FlowStatsRequestAndReply) {
  FlowStatsRequestMsg req;
  req.xid = 11;
  req.table_id = 0;
  Message back_req = decode(encode(req));
  ASSERT_TRUE(back_req.stats_request.has_value());
  EXPECT_EQ(*back_req.stats_request, req);

  FlowStatsReplyMsg rep;
  rep.xid = 11;
  rep.more = true;
  for (int i = 0; i < 3; ++i) {
    FlowStatsEntry e;
    e.cookie = static_cast<std::uint64_t>(i);
    e.match.nw_src = static_cast<std::uint32_t>(i);
    e.duration_sec = 60;
    e.packet_count = 1000 + static_cast<std::uint64_t>(i);
    e.byte_count = 1 << 20;
    e.actions.push_back({1, 0xffff});
    rep.entries.push_back(e);
  }
  Message back_rep = decode(encode(rep));
  ASSERT_TRUE(back_rep.stats_reply.has_value());
  EXPECT_EQ(*back_rep.stats_reply, rep);
}

// ---------------------------------------------------------------------------
// Malformed input
// ---------------------------------------------------------------------------

TEST(OfMalformed, LengthMismatchRejected) {
  Bytes wire = encode(FlowModMsg{});
  EXPECT_THROW(decode(std::string_view(wire).substr(0, wire.size() - 4)),
               ParseError);
}

TEST(OfMalformed, TruncatedBodyRejected) {
  Bytes wire = encode(FlowModMsg{});
  wire.resize(40);
  wire[2] = 0;
  wire[3] = 40;  // header claims 40, body needs 72
  EXPECT_THROW(decode(wire), ParseError);
}

TEST(OfMalformed, BadActionLengthRejected) {
  FlowModMsg m;
  m.actions.push_back({1, 2});
  Bytes wire = encode(m);
  wire[74] = 0;
  wire[75] = 5;  // action length 5: not a multiple of 8
  EXPECT_THROW(decode(wire), ParseError);
}

TEST(OfMalformed, UnsupportedStatsTypeRejected) {
  Bytes wire = encode(FlowStatsRequestMsg{});
  wire[8] = 0;
  wire[9] = 3;  // OFPST_PORT
  EXPECT_THROW(decode(wire), ParseError);
}

TEST(OfMalformed, RandomBytesNeverCrash) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::size_t len = 8 + rng.next_below(120);
    Bytes junk;
    junk.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    // Make the header plausible so we reach the body parsers.
    junk[0] = static_cast<char>(kVersion);
    junk[2] = static_cast<char>(len >> 8);
    junk[3] = static_cast<char>(len & 0xff);
    try {
      decode(junk);
    } catch (const ParseError&) {
      // Expected for most inputs; crashing or UB is the failure mode.
    }
  }
}

// ---------------------------------------------------------------------------
// Stream reassembly
// ---------------------------------------------------------------------------

TEST(OfStream, ColdStartNeedsBytes) {
  StreamReassembler stream;
  EXPECT_EQ(stream.poll(), std::nullopt);
  stream.feed("\x01");
  EXPECT_EQ(stream.poll(), std::nullopt);
}

TEST(OfStream, ByteAtATimeDelivery) {
  Bytes a = encode(HelloMsg{1});
  Bytes b = encode(EchoMsg{2, false, "x"});
  Bytes joined = a + b;
  StreamReassembler stream;
  std::vector<Bytes> frames;
  for (char c : joined) {
    stream.feed(std::string_view(&c, 1));
    while (auto frame = stream.poll()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_EQ(stream.buffered(), 0u);
}

TEST(OfStream, RandomChunkingPreservesFrameSequence) {
  Xoshiro256 rng(7);
  std::vector<Bytes> sent;
  Bytes joined;
  for (int i = 0; i < 50; ++i) {
    Bytes frame;
    switch (rng.next_below(4)) {
      case 0:
        frame = encode(HelloMsg{static_cast<std::uint32_t>(i)});
        break;
      case 1: {
        EchoMsg echo;
        echo.xid = static_cast<std::uint32_t>(i);
        echo.payload = Bytes(rng.next_below(32), 'e');
        frame = encode(echo);
        break;
      }
      case 2: {
        FlowModMsg m;
        m.xid = static_cast<std::uint32_t>(i);
        m.actions.push_back(
            {static_cast<std::uint16_t>(rng.next_below(16)), 0xffff});
        frame = encode(m);
        break;
      }
      default: {
        PacketInMsg m;
        m.xid = static_cast<std::uint32_t>(i);
        m.payload = Bytes(rng.next_below(200), 'p');
        frame = encode(m);
        break;
      }
    }
    sent.push_back(frame);
    joined += frame;
  }

  StreamReassembler stream;
  std::vector<Bytes> received;
  std::size_t pos = 0;
  while (pos < joined.size()) {
    std::size_t chunk = 1 + rng.next_below(37);
    chunk = std::min(chunk, joined.size() - pos);
    stream.feed(std::string_view(joined).substr(pos, chunk));
    pos += chunk;
    while (auto frame = stream.poll()) received.push_back(*frame);
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i], sent[i]) << "frame " << i;
    EXPECT_EQ(decode(received[i]).header.xid, i);
  }
}

// ---------------------------------------------------------------------------
// Bridge to logical messages
// ---------------------------------------------------------------------------

TEST(OfBridge, FlowModRoundTripsThroughWire) {
  FlowMod logical{/*sw=*/7, /*flow=*/42, /*new_path=*/3};
  FlowModMsg wire_msg = to_openflow(logical, 123);
  Message decoded = decode(encode(wire_msg));
  ASSERT_TRUE(decoded.flow_mod.has_value());
  FlowMod back = from_openflow_flow_mod(*decoded.flow_mod, 7);
  EXPECT_EQ(back.sw, 7u);
  EXPECT_EQ(back.flow, 42u);
  EXPECT_EQ(back.new_path, 3u);
}

TEST(OfBridge, StatsReplyCarriesAllFlows) {
  FlowStatReply logical;
  logical.sw = 3;
  for (std::uint32_t f = 0; f < 10; ++f) {
    logical.stats.push_back({f, 100.0 * f, 4096ull * f});
  }
  FlowStatsReplyMsg wire_msg = to_openflow(logical, 1);
  Message decoded = decode(encode(wire_msg));
  ASSERT_TRUE(decoded.stats_reply.has_value());
  FlowStatReply back = from_openflow_stats(*decoded.stats_reply, 3);
  ASSERT_EQ(back.stats.size(), 10u);
  for (std::uint32_t f = 0; f < 10; ++f) {
    EXPECT_EQ(back.stats[f].flow, f);
    EXPECT_EQ(back.stats[f].bytes, 4096ull * f);
  }
}

TEST(OfBridge, WireSizesAreRealistic) {
  // The platform's logical sizes should be within ~2x of real OF sizes:
  // the paper's bandwidth shapes depend on relative, not absolute, sizes.
  FlowStatReply reply;
  reply.sw = 1;
  reply.stats.resize(100);
  std::size_t of_bytes = wire_size(reply);
  // 100 entries x 96B + header + 4 = 9612.
  EXPECT_EQ(of_bytes, 12 + 100 * 96);
  EXPECT_GT(wire_size(FlowMod{}), 70u);
  EXPECT_GT(wire_size(FlowStatQuery{}), 50u);
  EXPECT_GT(wire_size(PacketIn{}), 80u);
}

}  // namespace
}  // namespace beehive::of
