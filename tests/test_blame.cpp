// Tests for tail-latency attribution (DESIGN.md §11): the tail-based
// sampler's retention policy (threshold, error override, slowest-win
// budget), the new transport/hive span kinds (credit stall, retransmit,
// stall-queue, shed, batch flush), cross-hive trace assembly with
// critical-path blame, and the determinism property — assembly over a
// seeded faulted run (drops, duplicates, reorders) is bit-identical
// across repeats.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/faults.h"
#include "cluster/sim.h"
#include "instrument/blame.h"
#include "instrument/health.h"
#include "instrument/trace.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::Incr;
using testing::Poison;

// ---------------------------------------------------------------------------
// Tail sampler unit tests
// ---------------------------------------------------------------------------

TraceEvent span(TimePoint at, std::uint64_t trace_id,
                SpanKind kind = SpanKind::kIngress) {
  return TraceEvent{at, kind, 0, trace_id, 0, kNoBee, 0, 0, 0, 0};
}

TailSamplerConfig tail_config(Duration threshold, std::size_t max_traces) {
  TailSamplerConfig cfg;
  cfg.enabled = true;
  cfg.latency_threshold = threshold;
  cfg.max_traces = max_traces;
  cfg.max_spans_per_trace = 8;
  return cfg;
}

TEST(TailSampler, FastHealthyTracesRetainNothing) {
  TraceRecorder rec(64);
  rec.configure_tail(tail_config(1000, 4));
  rec.record(span(0, 7));
  rec.note_trace_end(7, 999, /*errored=*/false);
  EXPECT_EQ(rec.tail_retained(), 0u);
  EXPECT_EQ(rec.tail_rejected(), 0u);
}

TEST(TailSampler, SlowTraceRetainsItsSpansOnly) {
  TraceRecorder rec(64);
  rec.configure_tail(tail_config(1000, 4));
  rec.record(span(0, 7));
  rec.record(span(1, 8));  // a different, fast trace
  rec.record(span(1200, 7, SpanKind::kHandlerEnd));
  rec.note_trace_end(7, 1200, /*errored=*/false);
  ASSERT_EQ(rec.tail_retained(), 1u);
  auto retained = rec.retained_events();
  ASSERT_EQ(retained.size(), 2u);
  for (const TraceEvent& e : retained) EXPECT_EQ(e.trace_id, 7u);
}

TEST(TailSampler, ErroredTraceRetainedBelowThreshold) {
  TraceRecorder rec(64);
  rec.configure_tail(tail_config(1000, 4));
  rec.record(span(0, 3));
  rec.note_trace_end(3, 0, /*errored=*/true);
  EXPECT_EQ(rec.tail_retained(), 1u);
}

TEST(TailSampler, BudgetKeepsTheSlowestAndCountsLosers) {
  TraceRecorder rec(64);
  rec.configure_tail(tail_config(10, 2));
  rec.record(span(0, 1));
  rec.record(span(0, 2));
  rec.record(span(0, 3));
  rec.record(span(0, 4));
  rec.note_trace_end(1, 100, false);
  rec.note_trace_end(2, 200, false);
  ASSERT_EQ(rec.tail_retained(), 2u);
  EXPECT_EQ(rec.tail_rejected(), 0u);

  // Slower newcomer evicts the least-slow retained trace...
  rec.note_trace_end(3, 150, false);
  EXPECT_EQ(rec.tail_retained(), 2u);
  EXPECT_EQ(rec.tail_rejected(), 1u);
  std::set<std::uint64_t> ids;
  for (const TraceEvent& e : rec.retained_events()) ids.insert(e.trace_id);
  EXPECT_EQ(ids, (std::set<std::uint64_t>{2, 3}));

  // ...a faster one is itself the loser.
  rec.note_trace_end(4, 50, false);
  EXPECT_EQ(rec.tail_rejected(), 2u);
  ids.clear();
  for (const TraceEvent& e : rec.retained_events()) ids.insert(e.trace_id);
  EXPECT_EQ(ids, (std::set<std::uint64_t>{2, 3}));
  EXPECT_EQ(rec.trace_dropped_total(), rec.dropped() + rec.tail_rejected());
}

TEST(TailSampler, RetainedSpansSurviveRingOverwrite) {
  TraceRecorder rec(4);  // tiny ring: spans of trace 1 will be overwritten
  rec.configure_tail(tail_config(10, 2));
  rec.record(span(0, 1));
  rec.record(span(5, 1, SpanKind::kHandlerEnd));
  rec.note_trace_end(1, 100, false);
  for (std::uint64_t i = 0; i < 8; ++i) rec.record(span(10 + i, 99));

  auto merged = rec.events_with_retained();
  std::set<std::uint64_t> seqs;
  std::size_t trace1 = 0;
  for (const TraceEvent& e : merged) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    if (e.trace_id == 1) ++trace1;
  }
  EXPECT_EQ(trace1, 2u) << "overwritten spans must come back from retention";
  EXPECT_GT(merged.size(), rec.size());
}

// ---------------------------------------------------------------------------
// Sim fixtures: cross-hive traffic with tracing + tail sampling armed
// ---------------------------------------------------------------------------

ClusterConfig traced_config(std::uint32_t credit_window) {
  ClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.hive.metrics_period = 0;
  cfg.tracing = true;
  cfg.tail.enabled = true;
  // Any cross-hive message (>= one 200us wire hop) qualifies; local
  // instant traffic does not.
  cfg.tail.latency_threshold = 1;
  if (credit_window > 0) {
    cfg.hive.transport.enabled = true;
    cfg.hive.transport.credit_window = credit_window;
  }
  return cfg;
}

void pin_to_hive_1(SimCluster& sim) {
  sim.registry().set_placement_hook(
      [](AppId, const CellSet&, HiveId) -> HiveId { return 1; });
}

void drive_remote(SimCluster& sim, int n, Duration spacing) {
  for (int i = 0; i < n; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
    sim.run_for(spacing);
  }
  sim.run_to_idle();
}

std::set<SpanKind> kinds_present(const std::vector<TraceEvent>& events) {
  std::set<SpanKind> kinds;
  for (const TraceEvent& e : events) kinds.insert(e.kind);
  return kinds;
}

TEST(LinkSpans, FaultedCreditedRunEmitsTheNewKinds) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/1), apps);
  pin_to_hive_1(sim);
  LinkFaults lossy;
  lossy.drop = 0.3;
  sim.faults().set_default_link(lossy);
  sim.start();
  drive_remote(sim, 40, 20 * kMicrosecond);

  auto kinds = kinds_present(sim.trace_events());
  EXPECT_TRUE(kinds.contains(SpanKind::kBatchFlush));
  EXPECT_TRUE(kinds.contains(SpanKind::kStallQueued));
  EXPECT_TRUE(kinds.contains(SpanKind::kCreditStall));
  EXPECT_TRUE(kinds.contains(SpanKind::kRetransmit))
      << "30% drop over 40 messages must fire at least one retransmit";
}

TEST(LinkSpans, CleanRunEmitsNoFaultKinds) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/0), apps);
  pin_to_hive_1(sim);
  sim.start();
  drive_remote(sim, 10, 50 * kMicrosecond);

  auto kinds = kinds_present(sim.trace_events());
  EXPECT_FALSE(kinds.contains(SpanKind::kCreditStall));
  EXPECT_FALSE(kinds.contains(SpanKind::kRetransmit));
  EXPECT_FALSE(kinds.contains(SpanKind::kShed));
  EXPECT_TRUE(kinds.contains(SpanKind::kBatchFlush));
}

// ---------------------------------------------------------------------------
// Assembly + blame
// ---------------------------------------------------------------------------

TEST(Assembly, CrossHiveTraceHasBlamedCriticalPath) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/0), apps);
  pin_to_hive_1(sim);
  sim.start();
  drive_remote(sim, 8, 100 * kMicrosecond);

  auto traces = sim.assembled_traces(20);
  ASSERT_FALSE(traces.empty());
  // Slowest first.
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_GE(traces[i - 1].e2e, traces[i].e2e);
  }
  const AssembledTrace& t = traces.front();
  EXPECT_NE(t.trace_id, 0u);
  EXPECT_GE(t.hops, 1u) << "pinned traffic must cross the wire";
  EXPECT_GT(t.e2e, 0);
  EXPECT_FALSE(t.spans.empty());
  EXPECT_FALSE(t.critical.empty());
  EXPECT_FALSE(t.rows.empty());
  EXPECT_GT(t.blame.total(), 0u);
  EXPECT_GT(t.blame.wire_us, 0u) << "a cross-hive hop pays wire latency";
  EXPECT_LE(t.blame.total(), static_cast<std::uint64_t>(t.e2e))
      << "blame must never exceed the trace's wall time";
}

TEST(Assembly, FaultedRunBlamesStallOrRetransmit) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/1), apps);
  pin_to_hive_1(sim);
  LinkFaults lossy;
  lossy.drop = 0.3;
  sim.faults().set_default_link(lossy);
  sim.start();
  drive_remote(sim, 40, 20 * kMicrosecond);

  auto traces = sim.assembled_traces(20);
  ASSERT_FALSE(traces.empty());
  const TraceBlame totals = blame_totals(traces);
  EXPECT_GT(totals.stall_us + totals.retransmit_us, 0u)
      << "drops + a credit window of 1 must surface stall/retransmit blame";
}

TEST(Assembly, DeterministicUnderDupAndReorderFaults) {
  auto run = [] {
    AppSet apps;
    apps.emplace<CounterApp>();
    ClusterConfig cfg = traced_config(/*credit_window=*/2);
    cfg.seed = 1234;
    SimCluster sim(cfg, apps);
    pin_to_hive_1(sim);
    LinkFaults faults;
    faults.drop = 0.15;
    faults.duplicate = 0.2;
    faults.reorder = 0.2;
    sim.faults().set_default_link(faults);
    sim.start();
    drive_remote(sim, 30, 30 * kMicrosecond);

    std::vector<std::tuple<std::uint64_t, Duration, std::size_t, std::size_t,
                           std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t>>
        shape;
    for (const AssembledTrace& t : sim.assembled_traces(20)) {
      shape.emplace_back(t.trace_id, t.e2e, t.spans.size(), t.critical.size(),
                         t.blame.queue_us, t.blame.handler_us,
                         t.blame.serialize_us, t.blame.wire_us,
                         t.blame.retransmit_us, t.blame.stall_us);
    }
    return shape;
  };
  auto a = run();
  auto b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "assembly over a seeded faulted run must be "
                     "bit-identical across repeats";
}

TEST(Assembly, FailedHandlerMarksTheTrace) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/0), apps);
  sim.start();
  // Poison writes, emits, then throws: the hive rolls the handler back and
  // stamps kHandlerEnd aux2=1 — an errored terminal, retained regardless
  // of latency.
  sim.hive(0).inject(
      MessageEnvelope::make(Poison{"p"}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();

  auto traces = sim.assembled_traces(20);
  ASSERT_FALSE(traces.empty());
  EXPECT_TRUE(traces.front().failed)
      << "a rolled-back handler is an errored terminal: always retained";
}

TEST(Assembly, SyntheticShedTerminalIsMarked) {
  // Hand-built trace: ingress, then a mailbox shed carrying the trace id.
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{0, SpanKind::kIngress, 0, 9, 0, kNoBee, 0, 7,
                              0, 0, /*seq=*/0});
  events.push_back(TraceEvent{500, SpanKind::kShed, 0, 9, 0, kNoBee, 0, 7,
                              0, 0, /*seq=*/1});
  auto traces = assemble_traces(events, 10);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces.front().shed);
  EXPECT_EQ(traces.front().e2e, 500);
}

TEST(Assembly, DuplicateSpansByHiveSeqAreDeduped) {
  std::vector<TraceEvent> events;
  TraceEvent a{0, SpanKind::kIngress, 0, 9, 0, kNoBee, 0, 7, 0, 0, 0};
  TraceEvent b{10, SpanKind::kHandlerEnd, 0, 9, 0, kNoBee, 0, 7, 0, 0, 1};
  events.insert(events.end(), {a, b, a, b});  // e.g. ring + retained copy
  auto traces = assemble_traces(events, 10);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces.front().spans.size(), 2u);
}

// ---------------------------------------------------------------------------
// Surfacing: /traces.json body, health field, Prometheus family
// ---------------------------------------------------------------------------

TEST(Surfacing, TracesJsonCarriesBlameAndRows) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/0), apps);
  pin_to_hive_1(sim);
  sim.start();
  drive_remote(sim, 8, 100 * kMicrosecond);

  const std::string json = sim.traces_json(5);
  EXPECT_NE(json.find("\"blame_totals\""), std::string::npos);
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  EXPECT_NE(json.find("\"e2e_us\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"critical\""), std::string::npos);
  EXPECT_NE(json.find("\"wire_us\""), std::string::npos);
}

TEST(Surfacing, TraceDropExposedInHealthAndMetrics) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg = traced_config(/*credit_window=*/0);
  cfg.trace_capacity = 8;  // tiny ring: overwrites are guaranteed
  SimCluster sim(cfg, apps);
  pin_to_hive_1(sim);
  sim.start();
  drive_remote(sim, 50, 20 * kMicrosecond);

  ASSERT_NE(sim.tracer(0), nullptr);
  EXPECT_GT(sim.tracer(0)->trace_dropped_total(), 0u);
  HealthReport report = sim.health();
  ASSERT_FALSE(report.hives.empty());
  EXPECT_EQ(report.hives[0].trace_dropped,
            sim.tracer(0)->trace_dropped_total());
  EXPECT_NE(report.to_json().find("\"trace_dropped\""), std::string::npos);

  ASSERT_NE(sim.metrics(), nullptr);
  const std::string prom = sim.metrics()->prometheus_text();
  EXPECT_NE(prom.find("beehive_trace_dropped_total"), std::string::npos);
}

TEST(Surfacing, BlameSummaryTextNamesEveryBucket) {
  AppSet apps;
  apps.emplace<CounterApp>();
  SimCluster sim(traced_config(/*credit_window=*/0), apps);
  pin_to_hive_1(sim);
  sim.start();
  drive_remote(sim, 4, 100 * kMicrosecond);

  const std::string text = blame_summary_text(sim.assembled_traces(5));
  for (const char* bucket : {"queue=", "handler=", "serialize=", "wire=",
                             "retransmit=", "stall="}) {
    EXPECT_NE(text.find(bucket), std::string::npos) << bucket;
  }
}

}  // namespace
}  // namespace beehive
