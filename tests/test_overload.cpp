// Tests for end-to-end overload control (DESIGN.md §10): credit-based
// flow control on the reliable transport (window advertisement, sender
// stalls, FIFO across stalls), bounded mailboxes with per-app shed/block/
// priority policies, graceful degradation (reduced credit advertisement +
// placement veto), and the determinism property — a seeded run under
// backpressure AND fault injection is bit-identical across repeats.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/sim.h"
#include "core/overload.h"
#include "core/transport.h"
#include "core/wire.h"
#include "msg/codec.h"
#include "placement/strategy.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// Test app: sequence-numbered messages recorded in arrival order (the sim
// is single-threaded, so a plain vector sink is safe).
// ---------------------------------------------------------------------------

struct SeqMsg {
  static constexpr std::string_view kTypeName = "test.overload_seq";
  std::uint32_t seq = 0;

  void encode(ByteWriter& w) const { w.u32(seq); }
  static SeqMsg decode(ByteReader& r) { return {r.u32()}; }
};

class OrderApp : public App {
 public:
  explicit OrderApp(std::vector<std::uint32_t>* sink) : App("test.order") {
    on<SeqMsg>(
        [](const SeqMsg&) { return CellSet::single("ord", "all"); },
        [sink](AppContext& ctx, const SeqMsg& m) {
          sink->push_back(m.seq);
          ctx.state().put_as("ord", "all", I64{m.seq});
        });
  }
};

ClusterConfig bounded_config(std::uint32_t credit_window) {
  ClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.hive.metrics_period = 0;
  cfg.hive.transport.enabled = true;
  cfg.hive.transport.credit_window = credit_window;
  return cfg;
}

void pin_to_hive_1(SimCluster& sim) {
  sim.registry().set_placement_hook(
      [](AppId, const CellSet&, HiveId) -> HiveId { return 1; });
}

// ---------------------------------------------------------------------------
// OverloadPolicy plumbing
// ---------------------------------------------------------------------------

TEST(OverloadPolicyNames, RoundTrip) {
  for (OverloadPolicy p :
       {OverloadPolicy::kBlockSender, OverloadPolicy::kShedNewest,
        OverloadPolicy::kShedOldest, OverloadPolicy::kPriorityLanes}) {
    auto back = overload_policy_from_string(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(overload_policy_from_string("bogus").has_value());
}

TEST(PriorityTypes, PlatformAndStatsPrefixesAreProtected) {
  const MsgTypeId metrics = MsgTypeRegistry::instance().ensure<
      LocalMetricsReport>();
  const MsgTypeId incr = MsgTypeRegistry::instance().ensure<Incr>();
  EXPECT_TRUE(Hive::is_priority_type(metrics));
  EXPECT_FALSE(Hive::is_priority_type(incr));
}

// ---------------------------------------------------------------------------
// Bounded mailbox policies (Bee::hold_bounded unit semantics)
// ---------------------------------------------------------------------------

MessageEnvelope seq_env(std::uint32_t seq) {
  return MessageEnvelope::make(SeqMsg{seq}, 0, kNoBee, 0, 0);
}

MessageEnvelope priority_env() {
  return MessageEnvelope::make(LocalMetricsReport{}, 0, kNoBee, 0, 0);
}

bool is_priority(MsgTypeId type) { return Hive::is_priority_type(type); }

TEST(BoundedMailbox, BlockSenderHoldsPastTheLimit) {
  Bee bee(1, 1);
  const OverloadConfig oc{true, 2, OverloadPolicy::kBlockSender};
  for (std::uint32_t i = 0; i < 2; ++i) bee.hold(seq_env(i));
  EXPECT_EQ(bee.hold_bounded(seq_env(2), oc, is_priority),
            Bee::HoldOutcome::kHeld);
  EXPECT_EQ(bee.holdback_size(), 3u) << "kBlockSender never sheds";
}

TEST(BoundedMailbox, ShedNewestDropsTheIncomingMessage) {
  Bee bee(1, 1);
  const OverloadConfig oc{true, 2, OverloadPolicy::kShedNewest};
  for (std::uint32_t i = 0; i < 2; ++i) bee.hold(seq_env(i));
  EXPECT_EQ(bee.hold_bounded(seq_env(2), oc, is_priority),
            Bee::HoldOutcome::kShedNew);
  EXPECT_EQ(bee.holdback_size(), 2u);
  // The survivors are the oldest messages.
  auto held = bee.take_holdback();
  EXPECT_EQ(held.front().as<SeqMsg>().seq, 0u);
}

TEST(BoundedMailbox, ShedOldestEvictsTheHeadToAdmitTheTail) {
  Bee bee(1, 1);
  const OverloadConfig oc{true, 2, OverloadPolicy::kShedOldest};
  for (std::uint32_t i = 0; i < 2; ++i) bee.hold(seq_env(i));
  EXPECT_EQ(bee.hold_bounded(seq_env(2), oc, is_priority),
            Bee::HoldOutcome::kShedOld);
  auto held = bee.take_holdback();
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held.front().as<SeqMsg>().seq, 1u);
  EXPECT_EQ(held.back().as<SeqMsg>().seq, 2u);
}

TEST(BoundedMailbox, PriorityMessagesNeverShedUnderAnyPolicy) {
  for (OverloadPolicy p :
       {OverloadPolicy::kShedNewest, OverloadPolicy::kShedOldest,
        OverloadPolicy::kPriorityLanes, OverloadPolicy::kBlockSender}) {
    Bee bee(1, 1);
    const OverloadConfig oc{true, 1, p};
    bee.hold(seq_env(0));
    EXPECT_EQ(bee.hold_bounded(priority_env(), oc, is_priority),
              Bee::HoldOutcome::kHeld)
        << "policy " << to_string(p);
    EXPECT_EQ(bee.holdback_size(), 2u);
  }
  // kShedOldest with an all-priority holdback sheds the non-priority
  // newcomer instead of evicting protected traffic.
  Bee bee(1, 1);
  const OverloadConfig oc{true, 1, OverloadPolicy::kShedOldest};
  bee.hold(priority_env());
  EXPECT_EQ(bee.hold_bounded(seq_env(0), oc, is_priority),
            Bee::HoldOutcome::kShedNew);
  EXPECT_EQ(bee.holdback_size(), 1u);
}

// ---------------------------------------------------------------------------
// Sheddable-frame classification: control traffic is never dropped at the
// link's credit gate, whatever the policy.
// ---------------------------------------------------------------------------

TEST(SheddableFrames, OnlyPureAppTrafficIsSheddable) {
  Bytes app_frame;
  app_frame.push_back(static_cast<char>(FrameKind::kAppMsg));
  app_frame += "payload";
  EXPECT_TRUE(frame_is_sheddable(app_frame));

  Bytes control;
  control.push_back(static_cast<char>(FrameKind::kMigrateXfer));
  EXPECT_FALSE(frame_is_sheddable(control));

  ByteWriter app_batch;
  app_batch.u8(static_cast<std::uint8_t>(FrameKind::kBatch));
  app_batch.u32(2);
  for (int i = 0; i < 2; ++i) {
    app_batch.varint(app_frame.size());
    app_batch.raw(app_frame);
  }
  EXPECT_TRUE(frame_is_sheddable(std::move(app_batch).take()));

  ByteWriter mixed;
  mixed.u8(static_cast<std::uint8_t>(FrameKind::kBatch));
  mixed.u32(2);
  mixed.varint(app_frame.size());
  mixed.raw(app_frame);
  mixed.varint(control.size());
  mixed.raw(control);
  EXPECT_FALSE(frame_is_sheddable(std::move(mixed).take()))
      << "a batch carrying any control frame must never be shed";
}

// ---------------------------------------------------------------------------
// Credit windows on the wire
// ---------------------------------------------------------------------------

TEST(CreditFlow, SenderStallsAtTheWindowAndDrainsOnAck) {
  std::vector<std::uint32_t> order;
  AppSet apps;
  apps.emplace<OrderApp>(&order);
  SimCluster sim(bounded_config(/*credit_window=*/1), apps);
  pin_to_hive_1(sim);
  sim.start();

  // One frame per loop turn: with window 1 and acks at least
  // ack_delay + wire latency away, every frame past the first stalls.
  constexpr std::uint32_t kN = 10;
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(SeqMsg{i}, 0, kNoBee, 0, sim.now()));
    sim.run_for(20 * kMicrosecond);
  }
  EXPECT_GT(sim.hive(0).transport_counters().frames_stalled, 0u)
      << "the credit gate must have engaged";
  EXPECT_GT(sim.hive(0).transport()->stalled_now(), 0u);
  EXPECT_TRUE(sim.hive(0).overloaded())
      << "stalled frames must surface through the admission signal";

  sim.run_to_idle();
  EXPECT_EQ(sim.hive(0).transport()->stalled_now(), 0u)
      << "acks must return credit and drain the stalled queue";
  EXPECT_FALSE(sim.hive(0).overloaded());
  ASSERT_EQ(order.size(), kN) << "stalling must not lose messages";
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(order[i], i) << "FIFO must survive the stall queue";
  }
  EXPECT_EQ(sim.hive(0).counters().shed_total, 0u);
}

TEST(CreditFlow, ShedNewestDropsAppBatchesPastTheStallLimit) {
  std::vector<std::uint32_t> order;
  AppSet apps;
  apps.emplace<OrderApp>(&order);
  ClusterConfig cfg = bounded_config(/*credit_window=*/1);
  cfg.hive.transport.stall_limit = 1;
  cfg.hive.transport.overload = OverloadPolicy::kShedNewest;
  SimCluster sim(cfg, apps);
  pin_to_hive_1(sim);
  sim.start();

  constexpr std::uint32_t kN = 12;
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(SeqMsg{i}, 0, kNoBee, 0, sim.now()));
    sim.run_for(20 * kMicrosecond);
  }
  sim.run_to_idle();

  EXPECT_GT(sim.hive(0).counters().shed_total, 0u)
      << "overflow past the stall limit must shed under kShedNewest";
  EXPECT_GT(sim.hive(0).transport_counters().frames_shed, 0u);
  EXPECT_LT(order.size(), static_cast<std::size_t>(kN));
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i])
        << "survivors must still arrive in emission order";
  }
}

// ---------------------------------------------------------------------------
// Window-watermark queue stats (satellite: hwm resets on read)
// ---------------------------------------------------------------------------

TEST(QueueStatsWindow, HighWatermarkResetsOnRead) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = 0;
  SimCluster sim(cfg, apps);
  sim.start();
  sim.run_to_idle();

  for (int i = 0; i < 32; ++i) sim.schedule_after(0, kSecond, [] {});
  const QueueStats pending = sim.queue_stats(0);
  EXPECT_EQ(pending.depth, 32u);
  EXPECT_GE(pending.hwm, 32u);

  sim.run_to_idle();
  const QueueStats drained = sim.queue_stats(0);
  EXPECT_EQ(drained.depth, 0u);
  // The read above reset the watermark baseline to 32 (the then-current
  // depth); the drain never pushed past it.
  EXPECT_EQ(drained.hwm, 32u);
  const QueueStats quiet = sim.queue_stats(0);
  EXPECT_EQ(quiet.hwm, 0u)
      << "with no traffic since the last read, the window watermark must "
         "have reset to the current (zero) depth";
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

TEST(Degradation, LowHealthAdvertisesReducedCreditToPeers) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.hive.transport.enabled = true;
  cfg.hive.metrics_period = 5 * kMillisecond;
  cfg.hive.timers_until = 60 * kMillisecond;
  // Scores are <= 100, so every hive degrades at its first report — an
  // artificial threshold that lets the test observe the advertisement
  // without manufacturing a real overload.
  cfg.hive.degrade_below_score = 101.0;
  SimCluster sim(cfg, apps);
  pin_to_hive_1(sim);
  sim.start();

  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_for(20 * kMillisecond);

  EXPECT_TRUE(sim.hive(1).degraded());
  EXPECT_TRUE(sim.hive(1).health().degraded);
  EXPECT_EQ(sim.hive(1).transport()->advertised_window(),
            cfg.hive.transport.degraded_window);
  // Hive 0 heard the advertisement on an ack and caps its sends to it.
  EXPECT_EQ(sim.hive(0).transport()->peer_window(1),
            static_cast<std::uint64_t>(cfg.hive.transport.degraded_window));
}

TEST(Degradation, DegradedTargetVetoesMigration) {
  // A bee on hive 0 whose traffic majority comes from hive 1: normally a
  // clean "majority" accept for CostPressureStrategy — unless hive 1 is
  // degraded, which must read as a hard veto.
  ClusterView view;
  view.n_hives = 2;
  view.hive_cells[0] = 10;
  view.hive_cells[1] = 10;
  BeeView bee;
  bee.bee = make_bee_id(0, 1);
  bee.hive = 0;
  bee.cells = 1;
  bee.msgs_in = 100;
  bee.cost_us = 1000;
  bee.inbound_by_hive[1] = 90;
  bee.inbound_by_hive[0] = 10;
  view.bees.push_back(bee);

  CostPressureStrategy strat;
  std::vector<PlacementDecision> log;
  auto accepted = strat.decide_explained(view, &log);
  ASSERT_EQ(accepted.size(), 1u) << "sanity: healthy target accepts";

  view.hive_degraded[1] = true;
  log.clear();
  EXPECT_TRUE(strat.decide_explained(view, &log).empty());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].reason, "degraded_target");
}

// ---------------------------------------------------------------------------
// The property (satellite): determinism + FIFO + zero loss with
// backpressure AND fault injection active, under kBlockSender.
// ---------------------------------------------------------------------------

TEST(OverloadProperties, DeterministicFifoLosslessUnderBackpressureAndFaults) {
  constexpr std::uint32_t kN = 300;
  auto run = [&]() {
    std::vector<std::uint32_t> order;
    AppSet apps;
    OrderApp& app = apps.emplace<OrderApp>(&order);
    app.set_overload({.bounded = true,
                      .mailbox_limit = 64,
                      .policy = OverloadPolicy::kBlockSender});
    ClusterConfig cfg = bounded_config(/*credit_window=*/4);
    cfg.seed = 20260809;
    SimCluster sim(cfg, apps);
    sim.faults().set_default_link({.drop = 0.1,
                                   .duplicate = 0.05,
                                   .jitter = 0.2,
                                   .jitter_max = 500 * kMicrosecond,
                                   .reorder = 0.1});
    pin_to_hive_1(sim);
    sim.start();
    for (std::uint32_t i = 0; i < kN; ++i) {
      sim.hive(0).inject(
          MessageEnvelope::make(SeqMsg{i}, 0, kNoBee, 0, sim.now()));
      if (i % 4 == 3) sim.run_for(100 * kMicrosecond);
    }
    sim.run_to_idle();
    return std::make_tuple(order, sim.hive(0).counters().shed_total + 0u,
                           sim.hive(0).transport_counters().frames_stalled +
                               0u,
                           sim.meter().total_bytes(),
                           sim.faults().stats().frames_dropped);
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b) << "a seeded run with credit stalls, sheds armed and an "
                     "active fault plan must be bit-identical across repeats";

  const auto& [order, shed, stalled, bytes, dropped] = a;
  EXPECT_GT(dropped, 0u) << "sanity: the fault plan must have been active";
  EXPECT_GT(stalled, 0u) << "sanity: backpressure must have engaged";
  EXPECT_EQ(shed, 0u) << "kBlockSender must never shed";
  ASSERT_EQ(order.size(), kN) << "zero lost non-shed messages";
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_EQ(order[i], i)
        << "per-pair FIFO must survive stalls + retransmits + reordering";
  }
}

}  // namespace
}  // namespace beehive
