// Integration test: the paper's Figure 4 qualitative claims at reduced
// scale (8 hives, 80 switches, 12 simulated seconds) so the headline
// reproduction is guarded by ctest, not only by the bench binary.
#include <gtest/gtest.h>

#include "bench/te_harness.h"

namespace beehive {
namespace {

using bench::run_te_scenario;
using bench::TEMode;
using bench::TEParams;
using bench::TEResult;

class Fig4Shapes : public ::testing::Test {
 protected:
  static TEParams params() {
    TEParams p;
    p.n_hives = 8;
    p.n_switches = 80;
    p.duration = 12 * kSecond;
    return p;
  }

  // The three scenarios are deterministic; run each once for the suite.
  static const TEResult& naive() {
    static TEResult r = run_te_scenario(TEMode::kNaive, params());
    return r;
  }
  static const TEResult& decoupled() {
    static TEResult r = run_te_scenario(TEMode::kDecoupled, params());
    return r;
  }
  static const TEResult& optimized() {
    static TEResult r = run_te_scenario(TEMode::kOptimized, params());
    return r;
  }
};

TEST_F(Fig4Shapes, NaiveIsEffectivelyCentralized) {
  // Fig 4a: "most messages are sent to/from the bees on only one hive."
  EXPECT_GT(naive().hotspot_share, 0.9);
  EXPECT_EQ(naive().te_bees, 1u);
  EXPECT_LT(naive().tail_locality, 0.5);
}

TEST_F(Fig4Shapes, DecoupledDistributesAndLocalizes) {
  // Fig 4b: "most messages are now processed locally (the diagonal)."
  EXPECT_GT(decoupled().te_bees, params().n_hives);
  EXPECT_GT(decoupled().tail_locality, 0.8);
}

TEST_F(Fig4Shapes, DecoupledSlashesControlBandwidth) {
  // Fig 4e vs 4d: "control channel consumption is significantly improved."
  EXPECT_LT(decoupled().wire_bytes * 2, naive().wire_bytes);
  EXPECT_LT(decoupled().tail_kbps, naive().tail_kbps / 4);
}

TEST_F(Fig4Shapes, OptimizerMigratesAndConverges) {
  // Fig 4c/4f: live migration localizes processing; consumption drops to
  // the decoupled level after the migration spike.
  EXPECT_GT(optimized().migrations, 0u);
  EXPECT_GE(optimized().tail_locality, 0.9 * decoupled().tail_locality);
  EXPECT_LE(optimized().tail_kbps, 1.5 * decoupled().tail_kbps + 1.0);
}

TEST_F(Fig4Shapes, OptimizedBandwidthDeclinesOverTime) {
  const auto& kbps = optimized().kbps;
  ASSERT_GE(kbps.size(), 6u);
  double head = 0.0;
  for (std::size_t i = 0; i < kbps.size() / 3; ++i) head += kbps[i];
  head /= static_cast<double>(kbps.size() / 3);
  EXPECT_LT(optimized().tail_kbps, head);
}

TEST_F(Fig4Shapes, AllScenariosRerouteHotFlows) {
  // The TE control loop closes in every design: 10% of 100 flows on each
  // of 80 switches get FlowMods (plus occasional noise-driven re-alarms).
  EXPECT_GE(naive().flow_mods, 800u);
  EXPECT_GE(decoupled().flow_mods, 800u);
  EXPECT_GE(optimized().flow_mods, 800u);
}

TEST_F(Fig4Shapes, ScenariosAreDeterministic) {
  TEResult again = run_te_scenario(TEMode::kDecoupled, params());
  EXPECT_EQ(again.wire_bytes, decoupled().wire_bytes);
  EXPECT_EQ(again.wire_messages, decoupled().wire_messages);
  EXPECT_EQ(again.kbps, decoupled().kbps);
}

}  // namespace
}  // namespace beehive
