// Tests for state replication and hive-failure recovery (the paper's §7
// fault-tolerance future work, implemented as an extension).
#include <gtest/gtest.h>

#include "cluster/sim.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;
using testing::PairIncr;
using testing::Poison;

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() { apps_.emplace<CounterApp>(); }

  SimCluster make_sim(std::size_t n_hives, bool replication = true) {
    ClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;
    config.hive.replication = replication;
    return SimCluster(config, apps_);
  }

  template <typename M>
  void send(SimCluster& sim, HiveId hive, M msg) {
    sim.hive(hive).inject(
        MessageEnvelope::make(std::move(msg), 0, kNoBee, hive, sim.now()));
    sim.run_to_idle();
  }

  std::int64_t counter_value(SimCluster& sim, const std::string& key) {
    AppId app = apps_.find_by_name("test.counter")->id();
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (auto v = bee->store().dict(CounterApp::kDict).get_as<I64>(key)) {
        return v->v;
      }
    }
    return -1;
  }

  AppSet apps_;
};

TEST_F(ReplicationTest, CommittedWritesReachTheReplica) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"r", 5});
  send(sim, 1, Incr{"r", 2});

  BeeId bee = sim.registry().live_bees()[0].id;
  // Replica of hive 1's bees lives on hive 2.
  const StateStore* replica = sim.hive(2).replica_store(bee);
  ASSERT_NE(replica, nullptr);
  auto v = replica->find_dict(CounterApp::kDict)->get_as<I64>("r");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->v, 7);
}

TEST_F(ReplicationTest, RollbackedWritesAreNotReplicated) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"p", 1});
  send(sim, 1, Poison{"p"});  // writes 9999, then throws -> rollback

  BeeId bee = sim.registry().live_bees()[0].id;
  const StateStore* replica = sim.hive(2).replica_store(bee);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->find_dict(CounterApp::kDict)->get_as<I64>("p")->v, 1);
}

TEST_F(ReplicationTest, ReplicationOffMeansNoReplicas) {
  SimCluster sim = make_sim(3, /*replication=*/false);
  sim.start();
  send(sim, 1, Incr{"x", 1});
  EXPECT_EQ(sim.hive(2).replica_count(), 0u);
}

TEST_F(ReplicationTest, FailoverRecoversStateOnReplicaHive) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 2, Incr{"f", 10});
  BeeId bee = sim.registry().live_bees()[0].id;
  ASSERT_EQ(sim.registry().hive_of(bee), 2u);

  sim.fail_hive(2);
  EXPECT_EQ(sim.recover_hive(2), 1u);  // one bee, recovered with state
  sim.run_to_idle();

  EXPECT_EQ(sim.registry().hive_of(bee), 3u);  // ring successor
  Bee* adopted = sim.hive(3).find_bee(bee);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted->store().dict(CounterApp::kDict).get_as<I64>("f")->v,
            10);

  // The recovered bee keeps working, from any hive.
  send(sim, 0, Incr{"f", 1});
  EXPECT_EQ(counter_value(sim, "f"), 11);
}

TEST_F(ReplicationTest, RecoveredBeeGetsANewReplica) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 1, Incr{"g", 3});
  BeeId bee = sim.registry().live_bees()[0].id;

  sim.fail_hive(1);
  sim.recover_hive(1);
  sim.run_to_idle();  // adoption snapshot flows to the new replica (hive 3)

  const StateStore* replica = sim.hive(3).replica_store(bee);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->find_dict(CounterApp::kDict)->get_as<I64>("g")->v, 3);
}

TEST_F(ReplicationTest, FailoverWithoutReplicationLosesStateButNotLiveness) {
  SimCluster sim = make_sim(4, /*replication=*/false);
  sim.start();
  send(sim, 2, Incr{"l", 42});
  BeeId bee = sim.registry().live_bees()[0].id;

  sim.fail_hive(2);
  EXPECT_EQ(sim.recover_hive(2), 0u);  // no replica: lossy restart
  sim.run_to_idle();

  send(sim, 0, Incr{"l", 1});
  EXPECT_EQ(counter_value(sim, "l"), 1);  // state restarted from zero
  EXPECT_EQ(sim.registry().hive_of(bee), 3u);
}

TEST_F(ReplicationTest, MultipleBeesFailOverTogether) {
  SimCluster sim = make_sim(4);
  sim.start();
  for (int i = 0; i < 6; ++i) {
    send(sim, 1, Incr{"k" + std::to_string(i), i + 1});
  }
  sim.fail_hive(1);
  EXPECT_EQ(sim.recover_hive(1), 6u);
  sim.run_to_idle();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(counter_value(sim, "k" + std::to_string(i)), i + 1);
  }
  EXPECT_EQ(sim.hive(2).bee_count(), 6u);
}

TEST_F(ReplicationTest, MergedBeeStateIsFullyReplicated) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 1, Incr{"a", 1});
  send(sim, 2, Incr{"b", 2});
  send(sim, 1, PairIncr{"a", "b"});  // merge: one bee owns both cells
  ASSERT_EQ(sim.registry().live_bee_count(), 1u);
  BeeRecord rec = sim.registry().live_bees()[0];

  sim.fail_hive(rec.hive);
  EXPECT_EQ(sim.recover_hive(rec.hive), 1u);
  sim.run_to_idle();
  EXPECT_EQ(counter_value(sim, "a"), 2);
  EXPECT_EQ(counter_value(sim, "b"), 3);
}

TEST_F(ReplicationTest, MigratedBeeReplicatesAtItsNewHome) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 1, Incr{"m", 9});
  BeeId bee = sim.registry().live_bees()[0].id;
  sim.hive(1).request_migration(bee, 2);
  sim.run_to_idle();
  ASSERT_EQ(sim.registry().hive_of(bee), 2u);

  // Fail the *new* home: the replica established post-migration (hive 3)
  // must carry the state.
  sim.fail_hive(2);
  EXPECT_EQ(sim.recover_hive(2), 1u);
  sim.run_to_idle();
  EXPECT_EQ(counter_value(sim, "m"), 9);
}

TEST_F(ReplicationTest, FramesToFailedHiveAreDropped) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"d", 1});
  std::uint64_t bytes_before = sim.meter().total_bytes();
  sim.fail_hive(1);
  // Injections at live hives that would route to the dead hive vanish.
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"d", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  EXPECT_EQ(sim.meter().total_bytes(), bytes_before);
}

TEST_F(ReplicationTest, ReplicationOverheadIsMetered) {
  SimCluster with = make_sim(3, true);
  SimCluster without = make_sim(3, false);
  with.start();
  without.start();
  for (auto* sim : {&with, &without}) {
    for (int i = 0; i < 20; ++i) {
      sim->hive(1).inject(MessageEnvelope::make(Incr{"o", 1}, 0, kNoBee, 1,
                                                sim->now()));
    }
    sim->run_to_idle();
  }
  EXPECT_GT(with.meter().total_bytes(), without.meter().total_bytes());
  EXPECT_GT(with.meter().matrix_bytes(1, 2), 0u);  // hive 1 -> replica 2
}

}  // namespace
}  // namespace beehive
