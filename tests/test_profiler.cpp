// Tests for the cost/pressure/health loop: the sampling cost profiler
// (tick cadence, cell attribution, the bounded heat table), the hot-path
// contract that a disabled profiler adds zero allocations, queue-pressure
// accounting on the sim runtime, health scoring, and the cost x pressure
// placement strategy's explained decisions — ending with the full loop: an
// induced hot-bee skew whose migration decision cites the measured signal.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/sim.h"
#include "instrument/collector.h"
#include "instrument/health.h"
#include "instrument/profiler.h"
#include "placement/strategy.h"
#include "state/txn.h"
#include "tests/test_helpers.h"

// ---------------------------------------------------------------------------
// Counting allocator (same harness as tests/test_dispatch_hotpath.cpp):
// replaces every global operator new variant so the profiler-off test can
// assert the dispatch path's allocation budget is unchanged.
// ---------------------------------------------------------------------------

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  return std::aligned_alloc(a, rounded == 0 ? a : rounded);
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return ::operator new(n, al, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// CostProfiler mechanics
// ---------------------------------------------------------------------------

TEST(CostProfilerTick, DisabledNeverSamples) {
  CostProfiler p(ProfilerConfig{.enabled = false, .sample_every = 1});
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(p.tick());
}

TEST(CostProfilerTick, SamplesEveryNthActivation) {
  CostProfiler p(ProfilerConfig{.enabled = true, .sample_every = 8});
  int sampled = 0;
  for (int i = 1; i <= 64; ++i) {
    if (p.tick()) {
      ++sampled;
      EXPECT_EQ(i % 8, 0) << "sample fired off-cadence at activation " << i;
    }
  }
  EXPECT_EQ(sampled, 8);
  EXPECT_EQ(p.scale(), 8u);
}

TEST(CostProfilerTick, PeriodRoundsUpToPowerOfTwo) {
  CostProfiler p(ProfilerConfig{.enabled = true, .sample_every = 5});
  EXPECT_EQ(p.scale(), 8u);  // 5 -> next power of two
  int first = 0;
  for (int i = 1; i <= 64 && first == 0; ++i) {
    if (p.tick()) first = i;
  }
  EXPECT_EQ(first, 8);

  // sample_every = 0 degrades to measuring everything, not dividing by it.
  CostProfiler every(ProfilerConfig{.enabled = true, .sample_every = 0});
  EXPECT_EQ(every.scale(), 1u);
  EXPECT_TRUE(every.tick());
}

TEST(ThreadCpuClock, AdvancesUnderWork) {
  const std::uint64_t t0 = thread_cpu_now_ns();
  // Burn CPU until the clock must have advanced (a sleep would not).
  volatile std::uint64_t sink = 0;
  while (thread_cpu_now_ns() - t0 < 2'000'000) {
    for (int i = 0; i < 1000; ++i) sink += static_cast<std::uint64_t>(i);
  }
  EXPECT_GT(thread_cpu_now_ns(), t0);
}

// ---------------------------------------------------------------------------
// Cell heat table
// ---------------------------------------------------------------------------

TEST(CellHeat, TopSortsHottestFirstAndBounds) {
  CellHeatTable heat(8);
  heat.add("d/cold", 1, 10);
  heat.add("d/hot", 1, 500);
  heat.add("d/warm", 1, 100);
  heat.add("d/hot", 1, 500);

  auto top = heat.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].cell, "d/hot");
  EXPECT_EQ(top[0].cost_ns, 1000u);
  EXPECT_EQ(top[0].samples, 2u);
  EXPECT_EQ(top[1].cell, "d/warm");
}

TEST(CellHeat, OverflowFoldsIntoOtherBucketWithoutGrowing) {
  CellHeatTable heat(4);
  for (int i = 0; i < 4; ++i) {
    heat.add("d/k" + std::to_string(i), 1, 100 * (i + 1));
  }
  ASSERT_EQ(heat.size(), 4u);

  // Past capacity: the coldest row ("d/k0", 100ns) is repurposed as the
  // shared overflow bucket; the table never grows.
  heat.add("d/new1", 1, 50);
  heat.add("d/new2", 1, 60);
  EXPECT_EQ(heat.size(), 4u);
  bool has_other = false;
  for (const auto& row : heat.top(4)) {
    EXPECT_NE(row.cell, "d/new1");
    EXPECT_NE(row.cell, "d/new2");
    if (row.cell == "(other)") {
      has_other = true;
      EXPECT_EQ(row.cost_ns, 100u + 50u + 60u);  // folded history + overflow
    }
  }
  EXPECT_TRUE(has_other);
}

// ---------------------------------------------------------------------------
// Attribution
// ---------------------------------------------------------------------------

TEST(Attribution, SplitsScaledCostAcrossPolicyCells) {
  CostProfiler p(ProfilerConfig{.enabled = true, .sample_every = 4});
  CellSet cells{{"cnt", "a"}, {"cnt", "b"}};
  p.attribute(AccessPolicy::cells(cells), /*app=*/7, /*sampled_ns=*/1000);

  auto top = p.heat().top(4);
  ASSERT_EQ(top.size(), 2u);
  // 1000ns sample x scale 4 = 4000ns estimate, split over two cells.
  EXPECT_EQ(top[0].cost_ns, 2000u);
  EXPECT_EQ(top[1].cost_ns, 2000u);
  EXPECT_EQ(top[0].app, 7u);
}

TEST(Attribution, ForeachPolicyChargesWholeDictMarker) {
  CostProfiler p(ProfilerConfig{.enabled = true, .sample_every = 1});
  p.attribute(AccessPolicy::local_dict("routes"), 3, 500);
  auto top = p.heat().top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].cell, "routes/*");
  EXPECT_EQ(top[0].cost_ns, 500u);
}

TEST(Attribution, UnmappedPolicyChargesFallbackBucket) {
  CostProfiler p(ProfilerConfig{.enabled = true, .sample_every = 1});
  p.attribute(AccessPolicy::all(), 3, 123);
  auto top = p.heat().top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].cell, "(unmapped)");
}

// ---------------------------------------------------------------------------
// Hot vs idle attribution in a real cluster
// ---------------------------------------------------------------------------

/// Burns a configurable amount of thread CPU per message on the "work"
/// dict, next to a free handler on the "idle" dict — the contrast probe
/// for attribution.
struct Burn {
  static constexpr std::string_view kTypeName = "test.burn";
  std::string key;
  std::uint32_t us = 0;  ///< thread-CPU microseconds to burn

  void encode(ByteWriter& w) const {
    w.str(key);
    w.u32(us);
  }
  static Burn decode(ByteReader& r) {
    Burn b;
    b.key = r.str();
    b.us = r.u32();
    return b;
  }
};

class BurnApp : public App {
 public:
  BurnApp() : App("test.burn") {
    on<Burn>(
        [](const Burn& m) { return CellSet::single("work", m.key); },
        [](AppContext& ctx, const Burn& m) {
          const std::uint64_t until =
              thread_cpu_now_ns() + m.us * 1000ull;
          volatile std::uint64_t sink = 0;
          while (thread_cpu_now_ns() < until) {
            for (int i = 0; i < 100; ++i) sink += static_cast<std::uint64_t>(i);
          }
          I64 v = ctx.state().get_as<I64>("work", m.key).value_or(I64{});
          v.v += 1;
          ctx.state().put_as("work", m.key, v);
        });
  }
};

TEST(Profiler, HotCellOutweighsIdleCellInHeatTable) {
  AppSet apps;
  apps.emplace<BurnApp>();
  apps.emplace<CounterApp>();

  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = 0;
  cfg.hive.profiler.enabled = true;
  cfg.hive.profiler.sample_every = 1;  // measure every handler
  SimCluster sim(cfg, apps);
  sim.start();

  for (int i = 0; i < 32; ++i) {
    sim.hive(0).inject(MessageEnvelope::make(Burn{"hot", 200}, 0, kNoBee, 0,
                                             sim.now()));
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"idle", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  const CellHeatTable& heat = sim.hive(0).profiler().heat();
  std::uint64_t hot_ns = 0, idle_ns = 0;
  for (const auto& row : heat.top(16)) {
    if (row.cell == "work/hot") hot_ns = row.cost_ns;
    if (row.cell == "cnt/idle") idle_ns = row.cost_ns;
  }
  ASSERT_GT(hot_ns, 0u) << "the burning cell never got charged";
  // 32 x 200us of real CPU vs a counter increment: the measured ratio must
  // be decisive, not marginal (10x leaves huge slack under CI noise).
  EXPECT_GT(hot_ns, idle_ns * 10 + 1)
      << "hot=" << hot_ns << "ns idle=" << idle_ns << "ns";
}

TEST(Profiler, SampledCostReachesBeeMetricsWindow) {
  AppSet apps;
  apps.emplace<BurnApp>();

  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = kSecond;
  cfg.hive.timers_until = 2 * kSecond;
  cfg.hive.profiler.enabled = true;
  cfg.hive.profiler.sample_every = 1;
  cfg.metrics = true;
  SimCluster sim(cfg, apps);
  sim.start();

  for (int i = 0; i < 16; ++i) {
    sim.hive(0).inject(MessageEnvelope::make(Burn{"hot", 100}, 0, kNoBee, 0,
                                             sim.now()));
  }
  sim.run_to_idle();

  std::uint64_t cost = 0;
  for (Bee* bee : sim.hive(0).local_bees()) {
    cost += bee->total().cost_ns_sampled;
  }
  // 16 handlers x 100us of burned CPU: at least 1ms of it must be visible.
  EXPECT_GE(cost, 1'000'000u) << "sampled cost never reached bee metrics";
}

// ---------------------------------------------------------------------------
// Profiler off: the steady-state dispatch path allocates exactly as before
// ---------------------------------------------------------------------------

TEST(ProfilerOff, LocalSteadyStateStaysAllocationFree) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = 0;
  cfg.hive.profiler.enabled = false;  // explicit: the contract under test
  SimCluster sim(cfg, apps);
  sim.start();

  MessageEnvelope msg =
      MessageEnvelope::make(Incr{"k0", 1}, 0, kNoBee, 0, sim.now());
  for (int i = 0; i < 2000; ++i) sim.hive(0).inject(msg);  // warm everything
  sim.run_to_idle();

  constexpr std::uint64_t kN = 5000;
  const std::uint64_t runs_before = sim.hive(0).counters().handler_runs;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < kN; ++i) sim.hive(0).inject(msg);
  sim.run_to_idle();
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;

  ASSERT_EQ(sim.hive(0).counters().handler_runs - runs_before, kN);
  EXPECT_EQ(allocs, 0u)
      << "a disabled profiler must add zero allocations to local dispatch";
}

// ---------------------------------------------------------------------------
// Queue-pressure accounting (sim runtime)
// ---------------------------------------------------------------------------

TEST(QueuePressure, SimQueueStatsTrackDepthHwmAndDrain) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg;
  cfg.n_hives = 2;
  cfg.hive.metrics_period = 0;
  SimCluster sim(cfg, apps);
  sim.start();

  const QueueStats start = sim.queue_stats(0);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(0, kSecond, [] {});
  }
  QueueStats pending = sim.queue_stats(0);
  EXPECT_EQ(pending.depth, start.depth + 10);
  EXPECT_GE(pending.hwm, pending.depth);

  sim.run_to_idle();
  QueueStats drained = sim.queue_stats(0);
  EXPECT_EQ(drained.depth, 0u);
  EXPECT_EQ(drained.drained, start.drained + 10);
  EXPECT_GE(drained.hwm, start.depth + 10);
}

TEST(QueuePressure, ReportCarriesPressureAndHiveHealthReflectsIt) {
  AppSet apps;
  apps.emplace<CounterApp>();
  ClusterConfig cfg;
  cfg.n_hives = 1;
  cfg.hive.metrics_period = kSecond;
  cfg.hive.timers_until = 3 * kSecond;
  SimCluster sim(cfg, apps);
  sim.start();

  for (int i = 0; i < 64; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  }
  sim.run_to_idle();

  HealthReport report = sim.health();
  ASSERT_EQ(report.hives.size(), 1u);
  const HiveHealth& h = report.hives[0];
  EXPECT_EQ(h.hive, 0u);
  EXPECT_FALSE(h.suspected);
  EXPECT_GE(h.pressure, 0.0);
  EXPECT_LT(h.pressure, 1.0);
  // The sim drained everything, so the last window's pressure is low.
  EXPECT_LT(h.pressure, 0.5);
  EXPECT_GT(h.score(), 50.0);

  const std::string json = sim.health_json();
  EXPECT_NE(json.find("\"min_score\""), std::string::npos);
  EXPECT_NE(json.find("\"pressure\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Health scoring
// ---------------------------------------------------------------------------

TEST(HealthScore, HealthyHiveScoresFull) {
  HiveHealth h;
  EXPECT_DOUBLE_EQ(h.score(), 100.0);
}

TEST(HealthScore, DeductionsStackAndClampToZero) {
  HiveHealth h;
  h.pressure = 0.5;
  EXPECT_NEAR(h.score(), 100.0 - 40.0 * 0.5, 1e-9);

  h.suspected = true;
  EXPECT_NEAR(h.score(), 100.0 - 40.0 * 0.5 - 20.0, 1e-9);

  h.pressure = 1.0;
  h.retransmit_rate = 1.0;
  h.handler_p99_us = 100'000'000;  // 100s p99
  EXPECT_DOUBLE_EQ(h.score(), 0.0);  // never negative
}

TEST(HealthScore, ReportMinScoreAndRenderings) {
  HealthReport report;
  report.at = 5 * kSecond;
  HiveHealth good;
  good.hive = 0;
  HiveHealth bad;
  bad.hive = 1;
  bad.pressure = 0.9;
  bad.suspected = true;
  report.hives = {good, bad};

  EXPECT_NEAR(report.min_score(), bad.score(), 1e-9);
  EXPECT_LT(report.min_score(), 50.0);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"suspected\": true"), std::string::npos);
  EXPECT_NE(json.find("\"hive\": 1"), std::string::npos);

  const std::string text = report.to_text();
  EXPECT_NE(text.find("SUSPECTED"), std::string::npos);

  EXPECT_DOUBLE_EQ(HealthReport{}.min_score(), 100.0);
}

// ---------------------------------------------------------------------------
// CostPressureStrategy: explained decisions
// ---------------------------------------------------------------------------

ClusterView cost_view(std::uint64_t from_h0, std::uint64_t from_h1,
                      std::uint64_t cost_us) {
  ClusterView view;
  view.n_hives = 2;
  view.hive_cells[0] = 10;
  view.hive_cells[1] = 10;
  BeeView bee;
  bee.bee = make_bee_id(0, 1);
  bee.hive = 0;
  bee.cells = 3;
  bee.msgs_in = from_h0 + from_h1;
  bee.cost_us = cost_us;
  if (from_h0 > 0) bee.inbound_by_hive[0] = from_h0;
  if (from_h1 > 0) bee.inbound_by_hive[1] = from_h1;
  view.bees.push_back(bee);
  return view;
}

TEST(CostPressure, MeasuredCostDrivesSignalAndMajorityTarget) {
  CostPressureStrategy strat;
  std::vector<PlacementDecision> log;
  auto view = cost_view(10, 90, /*cost_us=*/5000);
  auto decisions = strat.decide_explained(view, &log);

  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].to, 1u);
  ASSERT_EQ(log.size(), 1u);
  const PlacementDecision& d = log[0];
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.reason, "majority");
  EXPECT_EQ(d.signal, "cost");
  EXPECT_EQ(d.cost_us, 5000u);
  EXPECT_DOUBLE_EQ(d.pressure_from, 0.0);
  EXPECT_DOUBLE_EQ(d.pressure_to, 0.0);
}

TEST(CostPressure, FallsBackToMessageSignalWithoutProfiler) {
  CostPressureStrategy strat;
  std::vector<PlacementDecision> log;
  auto decisions = strat.decide_explained(cost_view(10, 90, 0), &log);
  ASSERT_EQ(decisions.size(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].signal, "msgs");
  EXPECT_EQ(log[0].cost_us, 0u);
}

TEST(CostPressure, PressuredTargetVetoesTheMove) {
  CostPressureStrategy strat(CostPressureConfig{.pressure_slack = 0.25});
  auto view = cost_view(10, 90, 5000);
  view.hive_pressure[0] = 0.1;
  view.hive_pressure[1] = 0.8;  // target is drowning: moving there is wrong
  std::vector<PlacementDecision> log;
  EXPECT_TRUE(strat.decide_explained(view, &log).empty());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].accepted);
  EXPECT_EQ(log[0].reason, "pressure_inverted");
  EXPECT_DOUBLE_EQ(log[0].pressure_from, 0.1);
  EXPECT_DOUBLE_EQ(log[0].pressure_to, 0.8);
}

TEST(CostPressure, SourcePressureScalesRankOrdering) {
  // Two bees with equal cost; the one on the pressured hive must be ranked
  // (and thus logged) first.
  ClusterView view;
  view.n_hives = 3;
  view.hive_cells[0] = view.hive_cells[1] = view.hive_cells[2] = 10;
  view.hive_pressure[0] = 0.9;
  for (int i = 0; i < 2; ++i) {
    BeeView bee;
    bee.bee = make_bee_id(static_cast<HiveId>(i), i + 1);
    bee.hive = static_cast<HiveId>(i);
    bee.cells = 1;
    bee.msgs_in = 100;
    bee.cost_us = 1000;
    bee.inbound_by_hive[2] = 100;
    view.bees.push_back(bee);
  }
  CostPressureStrategy strat;
  std::vector<PlacementDecision> log;
  auto decisions = strat.decide_explained(view, &log);
  ASSERT_EQ(decisions.size(), 2u);
  ASSERT_EQ(log.size(), 2u);
  // The bee on pressured hive 0 ranks ahead of the equal-cost bee on the
  // calm hive 1.
  EXPECT_EQ(log[0].from, 0u);
  EXPECT_GT(log[0].score, log[1].score);
}

TEST(CostPressure, RespectsNoiseFloorCapacityAndMoveCap) {
  // Below the noise floor: not even logged.
  {
    CostPressureStrategy strat(CostPressureConfig{.min_messages = 1000});
    std::vector<PlacementDecision> log;
    EXPECT_TRUE(strat.decide_explained(cost_view(10, 90, 500), &log).empty());
    EXPECT_TRUE(log.empty());
  }
  // Capacity rejection mirrors the greedy strategy's.
  {
    auto view = cost_view(0, 100, 500);
    view.hive_cells[1] = 99;
    CostPressureStrategy strat(
        CostPressureConfig{.hive_cell_capacity = 100});
    std::vector<PlacementDecision> log;
    EXPECT_TRUE(strat.decide_explained(view, &log).empty());
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].reason, "capacity");
  }
  // max_moves caps accepted migrations per round.
  {
    ClusterView view;
    view.n_hives = 2;
    view.hive_cells[0] = 100;
    view.hive_cells[1] = 100;
    for (int i = 0; i < 5; ++i) {
      BeeView bee;
      bee.bee = make_bee_id(0, i + 1);
      bee.hive = 0;
      bee.cells = 1;
      bee.msgs_in = 100;
      bee.cost_us = 100 * (i + 1);
      bee.inbound_by_hive[1] = 100;
      view.bees.push_back(bee);
    }
    CostPressureStrategy strat(CostPressureConfig{.max_moves = 2});
    EXPECT_EQ(strat.decide(view).size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// The closed loop: induced hot-bee skew -> migration citing measured cost
// ---------------------------------------------------------------------------

TEST(ClosedLoop, HotBeeSkewMigratesWithMeasuredCostSignal) {
  // A pinned source on hive 2 hammers one hot cell owned by a bee on hive
  // 0. With the profiler on and the cost x pressure strategy driving the
  // optimizer, the hot bee must migrate to its majority source — and the
  // decision-log entry must cite the *measured* cost signal, not message
  // counts.
  struct SourceApp : App {
    SourceApp() : App("test.source", /*pinned=*/true) {
      every_foreach(kSecond / 2, "src",
                    [](AppContext& ctx, const MessageEnvelope&) {
                      for (int i = 0; i < 4; ++i) {
                        ctx.emit(Burn{"hot", 50});
                      }
                    });
      on<Incr>(
          [](const Incr& m) {
            return m.key == "seed" ? CellSet::single("src", "cell")
                                   : CellSet{};
          },
          [](AppContext& ctx, const Incr&) {
            ctx.state().put_as("src", "cell", I64{1});
          });
    }
  };

  AppSet apps;
  apps.emplace<BurnApp>();
  apps.emplace<SourceApp>();
  apps.emplace<CollectorApp>(
      std::make_shared<CostPressureStrategy>(
          CostPressureConfig{.majority_fraction = 0.5, .min_messages = 4}),
      3, CollectorConfig{.optimize_period = 2 * kSecond});

  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 12 * kSecond;
  config.hive.profiler.enabled = true;
  config.hive.profiler.sample_every = 1;
  SimCluster sim(config, apps);
  sim.start();

  sim.hive(0).inject(
      MessageEnvelope::make(Burn{"hot", 50}, 0, kNoBee, 0, 0));
  sim.hive(2).inject(MessageEnvelope::make(Incr{"seed", 1}, 0, kNoBee, 2, 0));
  sim.run_until(12 * kSecond);
  sim.run_to_idle();

  // The hot bee followed its traffic to hive 2…
  const AppId burn = apps.find_by_name("test.burn")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == burn) EXPECT_EQ(rec.hive, 2u);
  }

  // …and the decision log explains the move with the measured signal.
  const AppId collector = apps.find_by_name("platform.collector")->id();
  const StateStore* store = nullptr;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != collector) continue;
    store = &sim.hive(rec.hive).find_bee(rec.id)->store();
  }
  ASSERT_NE(store, nullptr);

  bool cited_cost = false;
  for (const PlacementRound& round :
       CollectorApp::decisions_from_store(*store)) {
    EXPECT_EQ(round.strategy, "costpressure");
    for (const PlacementDecision& d : round.decisions) {
      if (!d.accepted || d.to != 2u) continue;
      EXPECT_EQ(d.reason, "majority");
      EXPECT_FALSE(d.signal.empty());
      if (d.signal == "cost") {
        cited_cost = true;
        EXPECT_GT(d.cost_us, 0u)
            << "a cost-signal decision must carry the measured cost";
      }
    }
  }
  EXPECT_TRUE(cited_cost)
      << "no accepted migration cited the profiler's cost measurement";
}

}  // namespace
}  // namespace beehive
