// Unit tests for core plumbing: wire frame codecs, App/AppSet registration
// and binding resolution, timer semantics (mapped ticks fire once
// cluster-wide, foreach ticks fire per hive), and hive counters.
#include <gtest/gtest.h>

#include "cluster/sim.h"
#include "core/app.h"
#include "core/wire.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterQuery;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------------

template <typename F>
F frame_round_trip(FrameKind kind, const F& frame) {
  Bytes wire = encode_frame(kind, frame);
  ByteReader r(wire);
  EXPECT_EQ(static_cast<FrameKind>(r.u8()), kind);
  return F::decode(r);
}

TEST(WireFrames, AppMsgRoundTrip) {
  AppMsgFrame f;
  f.target = make_bee_id(3, 77);
  f.app = 42;
  f.min_transfers = 5;
  f.envelope = MessageEnvelope::make(Incr{"k", 1}).to_wire();
  AppMsgFrame back = frame_round_trip(FrameKind::kAppMsg, f);
  EXPECT_EQ(back.target, f.target);
  EXPECT_EQ(back.app, 42u);
  EXPECT_EQ(back.min_transfers, 5u);
  MessageEnvelope env = MessageEnvelope::from_wire(back.envelope);
  EXPECT_EQ(env.as<Incr>().key, "k");
}

TEST(WireFrames, MergeCmdRoundTrip) {
  MergeCmdFrame f{make_bee_id(1, 2), 9, make_bee_id(3, 4), 3};
  MergeCmdFrame back = frame_round_trip(FrameKind::kMergeCmd, f);
  EXPECT_EQ(back.loser, f.loser);
  EXPECT_EQ(back.winner, f.winner);
  EXPECT_EQ(back.winner_hive, 3u);
  EXPECT_EQ(back.app, 9u);
}

TEST(WireFrames, MigrateXferRoundTrip) {
  MigrateXferFrame f;
  f.bee = make_bee_id(2, 5);
  f.app = 7;
  f.is_merge = true;
  f.merge_target = make_bee_id(0, 1);
  f.src_hive = 2;
  f.transfers_applied = 11;
  f.transfers_required = 13;
  StateStore store;
  store.dict("d").put("k", "v");
  f.snapshot = store.snapshot();
  MigrateXferFrame back = frame_round_trip(FrameKind::kMigrateXfer, f);
  EXPECT_EQ(back.bee, f.bee);
  EXPECT_TRUE(back.is_merge);
  EXPECT_EQ(back.merge_target, f.merge_target);
  EXPECT_EQ(back.transfers_applied, 11u);
  EXPECT_EQ(back.transfers_required, 13u);
  StateStore restored = StateStore::from_snapshot(back.snapshot);
  EXPECT_EQ(restored.dict("d").get("k"), "v");
}

TEST(WireFrames, MigrationOrderAndAckRoundTrip) {
  MigrationOrderFrame order{make_bee_id(1, 1), 7};
  auto order_back = frame_round_trip(FrameKind::kMigrationOrder, order);
  EXPECT_EQ(order_back.bee, order.bee);
  EXPECT_EQ(order_back.to_hive, 7u);

  MigrateAckFrame ack{make_bee_id(4, 4)};
  auto ack_back = frame_round_trip(FrameKind::kMigrateAck, ack);
  EXPECT_EQ(ack_back.bee, ack.bee);
}

TEST(WireFrames, ReplicaFramesRoundTrip) {
  ReplicaTxnFrame txn;
  txn.bee = make_bee_id(1, 9);
  txn.app = 3;
  txn.writes.push_back({"d", "k1", false, "value"});
  txn.writes.push_back({"d", "k2", true, ""});
  auto txn_back = frame_round_trip(FrameKind::kReplicaTxn, txn);
  ASSERT_EQ(txn_back.writes.size(), 2u);
  EXPECT_EQ(txn_back.writes[0].value, "value");
  EXPECT_TRUE(txn_back.writes[1].erased);

  ReplicaSnapshotFrame snap;
  snap.bee = txn.bee;
  snap.app = 3;
  StateStore store;
  store.dict("x").put("y", "z");
  snap.snapshot = store.snapshot();
  auto snap_back = frame_round_trip(FrameKind::kReplicaSnapshot, snap);
  EXPECT_EQ(StateStore::from_snapshot(snap_back.snapshot).dict("x").get("y"),
            "z");
}

// ---------------------------------------------------------------------------
// Bee id helpers
// ---------------------------------------------------------------------------

TEST(BeeIds, PackAndUnpack) {
  BeeId id = make_bee_id(0xdead, 0xbeef);
  EXPECT_EQ(bee_home_hive(id), 0xdeadu);
  EXPECT_EQ(bee_counter(id), 0xbeefu);
  EXPECT_EQ(to_string_bee(id), "bee(57005/48879)");
  EXPECT_EQ(to_string_bee(kNoBee), "bee(io)");
}

// ---------------------------------------------------------------------------
// App registration
// ---------------------------------------------------------------------------

TEST(AppSetUnit, DuplicateNameRejected) {
  AppSet apps;
  apps.emplace<testing::CounterApp>();
  EXPECT_THROW(apps.emplace<testing::CounterApp>(), std::invalid_argument);
}

TEST(AppSetUnit, FindByIdAndName) {
  AppSet apps;
  App& counter = apps.emplace<testing::CounterApp>();
  EXPECT_EQ(apps.find(counter.id()), &counter);
  EXPECT_EQ(apps.find_by_name("test.counter"), &counter);
  EXPECT_EQ(apps.find_by_name("nope"), nullptr);
  EXPECT_EQ(apps.find(0xffffffff), nullptr);
}

TEST(AppSetUnit, SubscribersIndexedByType) {
  AppSet apps;
  apps.emplace<testing::CounterApp>();
  apps.emplace<testing::SinkApp>();
  auto incr_subs = apps.subscribers(msg_type_id<Incr>());
  ASSERT_EQ(incr_subs.size(), 1u);
  EXPECT_EQ(incr_subs[0].first->name(), "test.counter");
  // CounterValue: only the sink subscribes.
  auto value_subs = apps.subscribers(msg_type_id<testing::CounterValue>());
  ASSERT_EQ(value_subs.size(), 1u);
  EXPECT_EQ(value_subs[0].first->name(), "test.sink");
  EXPECT_TRUE(apps.subscribers(0xdeadbeef).empty());
}

TEST(AppUnit, AppIdIsStableHashOfName) {
  testing::CounterApp a;
  EXPECT_EQ(a.id(), fnv1a32("test.counter"));
}

// ---------------------------------------------------------------------------
// Timer semantics
// ---------------------------------------------------------------------------

struct MappedTicker : App {
  explicit MappedTicker() : App("test.mapped_ticker") {
    every(kSecond,
          [](const MessageEnvelope&) {
            return CellSet::single("mt", "cell");
          },
          [](AppContext& ctx, const MessageEnvelope&) {
            I64 n = ctx.state().get_as<I64>("mt", "cell").value_or(I64{});
            n.v += 1;
            ctx.state().put_as("mt", "cell", n);
          });
  }
};

TEST(TimerSemantics, MappedTimerFiresOnceClusterWide) {
  AppSet apps;
  apps.emplace<MappedTicker>();
  ClusterConfig config;
  config.n_hives = 5;
  config.hive.metrics_period = 0;
  config.hive.timers_until = 3 * kSecond + kMillisecond;
  SimCluster sim(config, apps);
  sim.start();
  sim.run_until(3 * kSecond + 2 * kMillisecond);
  sim.run_to_idle();

  // Exactly one bee, ticked once per second — not once per hive.
  ASSERT_EQ(sim.registry().live_bee_count(), 1u);
  BeeRecord rec = sim.registry().live_bees()[0];
  Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
  ASSERT_NE(bee, nullptr);
  auto n = bee->store().dict("mt").get_as<I64>("cell");
  ASSERT_TRUE(n.has_value());
  EXPECT_GE(n->v, 3);
  EXPECT_LE(n->v, 4);
  // The tick bee lives on the timer master (hive 0 by default).
  EXPECT_EQ(rec.hive, 0u);
}

struct ForeachTicker : App {
  explicit ForeachTicker() : App("test.foreach_ticker") {
    on<Incr>(
        [](const Incr& m) { return CellSet::single("ft", m.key); },
        [](AppContext& ctx, const Incr& m) {
          ctx.state().put_as("ft", m.key, I64{0});
        });
    every_foreach(kSecond, "ft",
                  [](AppContext& ctx, const MessageEnvelope&) {
                    std::vector<std::string> keys;
                    ctx.state().for_each(
                        "ft", [&keys](const std::string& k, const Bytes&) {
                          keys.push_back(k);
                        });
                    for (const std::string& k : keys) {
                      I64 n = ctx.state().get_as<I64>("ft", k).value_or(I64{});
                      n.v += 1;
                      ctx.state().put_as("ft", k, n);
                    }
                  });
  }
};

TEST(TimerSemantics, ForeachTimerTicksEveryBeeOncePerPeriod) {
  AppSet apps;
  apps.emplace<ForeachTicker>();
  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = 0;
  config.hive.timers_until = 2 * kSecond + kMillisecond;
  SimCluster sim(config, apps);
  sim.start();
  // One cell per hive, created before the first tick.
  for (HiveId h = 0; h < 3; ++h) {
    sim.hive(h).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(h), 1}, 0, kNoBee, h, sim.now()));
  }
  sim.run_until(2 * kSecond + 2 * kMillisecond);
  sim.run_to_idle();

  // Each bee's counter advanced ~2 (one per period), independent of the
  // cluster size — foreach ticks are per-bee, not per-hive-per-bee.
  for (HiveId h = 0; h < 3; ++h) {
    for (Bee* bee : sim.hive(h).local_bees()) {
      bee->store().dict("ft").for_each(
          [](const std::string& k, const Bytes& v) {
            std::int64_t n = decode_from_bytes<I64>(v).v;
            EXPECT_GE(n, 2) << k;
            EXPECT_LE(n, 3) << k;
          });
    }
  }
}

// ---------------------------------------------------------------------------
// Hive counters
// ---------------------------------------------------------------------------

TEST(HiveCounters, TrackRoutingAndHandlers) {
  AppSet apps;
  apps.emplace<testing::CounterApp>();
  apps.emplace<testing::SinkApp>();
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 0;
  SimCluster sim(config, apps);
  sim.start();

  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"k", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_to_idle();
  EXPECT_EQ(sim.hive(0).counters().injected, 1u);
  EXPECT_EQ(sim.hive(0).counters().routed_local, 1u);
  EXPECT_EQ(sim.hive(0).counters().handler_runs, 1u);

  sim.hive(1).inject(
      MessageEnvelope::make(CounterQuery{"k"}, 0, kNoBee, 1, sim.now()));
  sim.run_to_idle();
  EXPECT_EQ(sim.hive(1).counters().routed_remote, 1u);
  // The reply (CounterValue) was emitted on hive 0 and routed to the sink
  // bee created on hive 0: local.
  EXPECT_EQ(sim.hive(0).counters().handler_runs, 3u);  // incr+query+sink
}

}  // namespace
}  // namespace beehive
