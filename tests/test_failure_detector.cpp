// End-to-end failure detection + automatic failover: heartbeats stop, the
// detector suspects the hive, the harness callback fails bees over to
// replicas, and the workload continues.
#include <gtest/gtest.h>

#include "cluster/sim.h"
#include "instrument/failure_detector.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

class FailureDetectorTest : public ::testing::Test {
 protected:
  std::int64_t counter_value(SimCluster& sim, AppId app,
                             const std::string& key) {
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (auto v = bee->store().dict(CounterApp::kDict).get_as<I64>(key)) {
        return v->v;
      }
    }
    return -1;
  }
};

TEST_F(FailureDetectorTest, SilentHiveIsSuspectedAndFailedOver) {
  AppSet apps;
  apps.emplace<CounterApp>();

  SimCluster* sim_ptr = nullptr;
  std::vector<HiveId> suspected;
  apps.emplace<FailureDetectorApp>(
      FailureDetectorConfig{.check_period = kSecond,
                            .suspect_after = 2 * kSecond + 500 *
                                                              kMillisecond},
      [&sim_ptr, &suspected](HiveId hive) {
        suspected.push_back(hive);
        if (sim_ptr != nullptr) sim_ptr->recover_hive(hive);
      });

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = kSecond;
  config.hive.replication = true;
  config.hive.timers_until = 20 * kSecond;
  SimCluster sim(config, apps);
  sim_ptr = &sim;
  sim.start();

  // State on hive 2, then let heartbeats flow for a while.
  sim.hive(2).inject(
      MessageEnvelope::make(Incr{"x", 7}, 0, kNoBee, 2, sim.now()));
  sim.run_until(4 * kSecond);
  EXPECT_TRUE(suspected.empty());  // everyone healthy so far

  sim.fail_hive(2);
  sim.run_until(10 * kSecond);

  ASSERT_EQ(suspected, std::vector<HiveId>{2});
  // The counter bee failed over with its replicated state and still works.
  AppId counter = apps.find_by_name("test.counter")->id();
  EXPECT_EQ(counter_value(sim, counter, "x"), 7);
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"x", 1}, 0, kNoBee, 0, sim.now()));
  sim.run_until(11 * kSecond);
  EXPECT_EQ(counter_value(sim, counter, "x"), 8);

  // No further (duplicate) suspicions for the same hive.
  sim.run_until(15 * kSecond);
  EXPECT_EQ(suspected.size(), 1u);
}

TEST_F(FailureDetectorTest, HealthyClusterNeverSuspects) {
  AppSet apps;
  apps.emplace<CounterApp>();
  std::vector<HiveId> suspected;
  apps.emplace<FailureDetectorApp>(
      FailureDetectorConfig{.check_period = kSecond,
                            .suspect_after = 2 * kSecond},
      [&suspected](HiveId hive) { suspected.push_back(hive); });

  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = 500 * kMillisecond;
  config.hive.timers_until = 12 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  sim.run_until(12 * kSecond);
  sim.run_to_idle();
  EXPECT_TRUE(suspected.empty());
}

TEST_F(FailureDetectorTest, SuspectAfterIsClampedAgainstHeartbeatPeriod) {
  // suspect_after below two heartbeat periods would suspect healthy hives
  // between reports; the constructor clamps it (with a warning).
  FailureDetectorApp tight(
      FailureDetectorConfig{.check_period = kSecond,
                            .suspect_after = 500 * kMillisecond,
                            .metrics_period = kSecond},
      nullptr);
  EXPECT_EQ(tight.config().suspect_after, 2 * kSecond);

  // A sane configuration passes through untouched.
  FailureDetectorApp sane(
      FailureDetectorConfig{.check_period = kSecond,
                            .suspect_after = 3 * kSecond,
                            .metrics_period = kSecond},
      nullptr);
  EXPECT_EQ(sane.config().suspect_after, 3 * kSecond);
}

/// Records every HiveRecovered broadcast by the detector.
class RecoverySink : public App {
 public:
  explicit RecoverySink(std::vector<HiveRecovered>* out)
      : App("test.recovery_sink") {
    on<HiveRecovered>(
        [](const HiveRecovered&) { return CellSet::whole_dict("rsink"); },
        [out](AppContext& ctx, const HiveRecovered& m) {
          out->push_back(m);
          ctx.state().put_as("rsink", std::to_string(m.hive), I64{1});
        });
  }
};

TEST_F(FailureDetectorTest, HealedPartitionEmitsHiveRecovered) {
  AppSet apps;
  apps.emplace<CounterApp>();
  std::vector<HiveId> suspected;
  std::vector<HiveRecovered> recovered;
  apps.emplace<FailureDetectorApp>(
      FailureDetectorConfig{.check_period = kSecond,
                            .suspect_after = 2 * kSecond + 500 * kMillisecond,
                            .metrics_period = kSecond},
      [&suspected](HiveId hive) { suspected.push_back(hive); });
  apps.emplace<RecoverySink>(&recovered);

  ClusterConfig config;
  config.n_hives = 4;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 12 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  sim.run_until(3 * kSecond);
  EXPECT_TRUE(suspected.empty());

  // Partition one reporter away from the detector's hive: its heartbeats
  // stop arriving even though the hive itself is healthy.
  AppId fd = apps.find_by_name("platform.failure_detector")->id();
  HiveId fd_hive = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == fd) fd_hive = rec.hive;
  }
  const HiveId victim = fd_hive == 2 ? 1 : 2;
  sim.faults().partition(victim, fd_hive);
  sim.run_until(7 * kSecond);
  ASSERT_EQ(suspected, std::vector<HiveId>{victim});
  EXPECT_TRUE(recovered.empty());

  // Heal: the next heartbeat through announces the hive is back.
  sim.faults().heal(victim, fd_hive);
  sim.run_until(9 * kSecond);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].hive, victim);
  EXPECT_GT(recovered[0].down_for, 2 * kSecond);
  // And no duplicate suspicion fired for the still-healthy hive.
  EXPECT_EQ(suspected.size(), 1u);
}

TEST_F(FailureDetectorTest, DetectorIsOneCentralBee) {
  AppSet apps;
  apps.emplace<FailureDetectorApp>(FailureDetectorConfig{}, nullptr);
  ClusterConfig config;
  config.n_hives = 5;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 5 * kSecond;
  SimCluster sim(config, apps);
  sim.start();
  sim.run_until(5 * kSecond);
  sim.run_to_idle();

  AppId fd = apps.find_by_name("platform.failure_detector")->id();
  std::size_t fd_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == fd) ++fd_bees;
  }
  EXPECT_EQ(fd_bees, 1u);
}

}  // namespace
}  // namespace beehive
