// Tests for runtime instrumentation: per-bee metrics, the collector app
// (aggregation as a Beehive application), and placement strategies.
#include <gtest/gtest.h>

#include "cluster/sim.h"
#include "instrument/collector.h"
#include "instrument/metrics.h"
#include "placement/strategy.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// BeeMetrics & samples
// ---------------------------------------------------------------------------

TEST(BeeMetrics, ReceiveAndEmitAccounting) {
  BeeMetrics m;
  m.on_receive(7, 100);
  m.on_receive(7, 50);
  m.on_receive(9, 10);
  m.on_emit(1, 2, 30);
  EXPECT_EQ(m.msgs_in, 3u);
  EXPECT_EQ(m.bytes_in, 160u);
  EXPECT_EQ(m.inbound_from[7], 2u);
  EXPECT_EQ(m.inbound_from[9], 1u);
  EXPECT_EQ(m.msgs_out, 1u);
  EXPECT_EQ((m.causation[{1, 2}]), 1u);
}

TEST(BeeMetricsSample, CodecRoundTrip) {
  BeeMetricsSample s;
  s.bee = make_bee_id(3, 9);
  s.app = 42;
  s.hive = 3;
  s.msgs_in = 100;
  s.cells = 7;
  s.pinned = true;
  s.sources.push_back({make_bee_id(1, 1), 1, 55});
  s.sources.push_back({kNoBee, 3, 2});
  auto back = decode_from_bytes<BeeMetricsSample>(encode_to_bytes(s));
  EXPECT_EQ(back.bee, s.bee);
  EXPECT_EQ(back.msgs_in, 100u);
  EXPECT_TRUE(back.pinned);
  ASSERT_EQ(back.sources.size(), 2u);
  EXPECT_EQ(back.sources[0].count, 55u);
  EXPECT_EQ(back.sources[1].from_hive, 3u);
}

TEST(LocalMetricsReportMsg, CodecRoundTrip) {
  LocalMetricsReport r;
  r.hive = 11;
  r.at = 5 * kSecond;
  r.hive_cells = 30;
  r.bees.resize(3);
  r.bees[1].msgs_in = 9;
  auto back = decode_from_bytes<LocalMetricsReport>(encode_to_bytes(r));
  EXPECT_EQ(back.hive, 11u);
  EXPECT_EQ(back.at, 5 * kSecond);
  EXPECT_EQ(back.hive_cells, 30u);
  ASSERT_EQ(back.bees.size(), 3u);
  EXPECT_EQ(back.bees[1].msgs_in, 9u);
}

// ---------------------------------------------------------------------------
// Placement strategies (pure decision logic)
// ---------------------------------------------------------------------------

ClusterView two_hive_view(std::uint64_t from_h0, std::uint64_t from_h1) {
  ClusterView view;
  view.n_hives = 2;
  view.hive_cells[0] = 10;
  view.hive_cells[1] = 10;
  BeeView bee;
  bee.bee = make_bee_id(0, 1);
  bee.hive = 0;
  bee.cells = 3;
  bee.msgs_in = from_h0 + from_h1;
  if (from_h0 > 0) bee.inbound_by_hive[0] = from_h0;
  if (from_h1 > 0) bee.inbound_by_hive[1] = from_h1;
  view.bees.push_back(bee);
  return view;
}

TEST(GreedyStrategy, MigratesWhenMajorityIsRemote) {
  GreedyFollowSources greedy;
  auto decisions = greedy.decide(two_hive_view(10, 90));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].to, 1u);
}

TEST(GreedyStrategy, StaysWhenMajorityIsLocal) {
  GreedyFollowSources greedy;
  EXPECT_TRUE(greedy.decide(two_hive_view(90, 10)).empty());
}

TEST(GreedyStrategy, RespectsNoiseFloor) {
  GreedyFollowSources greedy(GreedyConfig{.min_messages = 100});
  EXPECT_TRUE(greedy.decide(two_hive_view(1, 5)).empty());
}

TEST(GreedyStrategy, MajorityFractionIsConfigurable) {
  GreedyFollowSources strict(GreedyConfig{.majority_fraction = 0.95});
  EXPECT_TRUE(strict.decide(two_hive_view(10, 90)).empty());
  GreedyFollowSources lax(GreedyConfig{.majority_fraction = 0.3});
  EXPECT_EQ(lax.decide(two_hive_view(40, 60)).size(), 1u);
}

TEST(GreedyStrategy, PinnedBeesNeverMove) {
  auto view = two_hive_view(0, 100);
  view.bees[0].pinned = true;
  GreedyFollowSources greedy;
  EXPECT_TRUE(greedy.decide(view).empty());
}

TEST(GreedyStrategy, CapacityBlocksMove) {
  auto view = two_hive_view(0, 100);
  view.hive_cells[1] = 99;
  GreedyFollowSources greedy(GreedyConfig{.hive_cell_capacity = 100});
  EXPECT_TRUE(greedy.decide(view).empty());  // 99 + 3 > 100
  GreedyFollowSources roomy(GreedyConfig{.hive_cell_capacity = 200});
  EXPECT_EQ(roomy.decide(view).size(), 1u);
}

TEST(GreedyStrategy, JointCapacityAcrossOneRound) {
  ClusterView view;
  view.n_hives = 2;
  view.hive_cells[0] = 0;
  view.hive_cells[1] = 0;
  for (int i = 0; i < 3; ++i) {
    BeeView bee;
    bee.bee = make_bee_id(0, static_cast<std::uint32_t>(i + 1));
    bee.hive = 0;
    bee.cells = 4;
    bee.msgs_in = 100;
    bee.inbound_by_hive[1] = 100;
    view.bees.push_back(bee);
  }
  // Capacity 10 fits two bees (8 cells), not three (12).
  GreedyFollowSources greedy(GreedyConfig{.hive_cell_capacity = 10});
  EXPECT_EQ(greedy.decide(view).size(), 2u);
}

ClusterView skewed_view(std::size_t n_hives, std::size_t bees_on_zero,
                        std::uint64_t msgs_each) {
  ClusterView view;
  view.n_hives = n_hives;
  for (HiveId h = 0; h < n_hives; ++h) view.hive_cells[h] = 0;
  for (std::size_t i = 0; i < bees_on_zero; ++i) {
    BeeView bee;
    bee.bee = make_bee_id(0, static_cast<std::uint32_t>(i + 1));
    bee.hive = 0;
    bee.cells = 1;
    bee.msgs_in = msgs_each;
    view.bees.push_back(bee);
  }
  return view;
}

TEST(LoadBalanceStrategyTest, ShedsLoadFromOverloadedHive) {
  LoadBalanceStrategy strategy;
  auto decisions = strategy.decide(skewed_view(4, 8, 100));
  ASSERT_FALSE(decisions.empty());
  for (const MigrationDecision& d : decisions) {
    EXPECT_NE(d.to, 0u);  // moves away from the hot hive
  }
  // Enough moves to bring hive 0 near the mean (2 of 8 bees stay ± 1).
  EXPECT_GE(decisions.size(), 5u);
  EXPECT_LE(decisions.size(), 7u);
}

TEST(LoadBalanceStrategyTest, BalancedClusterIsLeftAlone) {
  ClusterView view;
  view.n_hives = 3;
  for (HiveId h = 0; h < 3; ++h) {
    view.hive_cells[h] = 1;
    BeeView bee;
    bee.bee = make_bee_id(h, 1);
    bee.hive = h;
    bee.msgs_in = 100;
    view.bees.push_back(bee);
  }
  LoadBalanceStrategy strategy;
  EXPECT_TRUE(strategy.decide(view).empty());
}

TEST(LoadBalanceStrategyTest, PinnedAndQuietBeesStay) {
  auto view = skewed_view(2, 4, 100);
  for (BeeView& bee : view.bees) bee.pinned = true;
  LoadBalanceStrategy strategy;
  EXPECT_TRUE(strategy.decide(view).empty());

  auto quiet = skewed_view(2, 4, 2);  // below min_messages
  LoadBalanceStrategy strict(LoadBalanceConfig{.min_messages = 10});
  EXPECT_TRUE(strict.decide(quiet).empty());
}

TEST(LoadBalanceStrategyTest, PrefersSourceHiveOnTies) {
  auto view = skewed_view(3, 4, 100);
  // Bee 1 receives everything from hive 2: on a load tie 1-vs-2, pick 2.
  view.bees[0].inbound_by_hive[2] = 100;
  LoadBalanceStrategy strategy;
  auto decisions = strategy.decide(view);
  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(decisions[0].bee, view.bees[0].bee);
  EXPECT_EQ(decisions[0].to, 2u);
}

TEST(LoadBalanceStrategyTest, RespectsCapacity) {
  auto view = skewed_view(2, 6, 100);
  view.hive_cells[1] = 100;
  LoadBalanceStrategy full(LoadBalanceConfig{.hive_cell_capacity = 100});
  EXPECT_TRUE(full.decide(view).empty());
}

TEST(NoopStrategyTest, NeverDecides) {
  NoopStrategy noop;
  EXPECT_TRUE(noop.decide(two_hive_view(0, 1000)).empty());
}

TEST(RandomStrategyTest, MovesSomeBeesDeterministically) {
  ClusterView view;
  view.n_hives = 4;
  for (int i = 0; i < 100; ++i) {
    BeeView bee;
    bee.bee = make_bee_id(0, static_cast<std::uint32_t>(i + 1));
    bee.hive = 0;
    view.bees.push_back(bee);
  }
  RandomStrategy a(5, 0.5), b(5, 0.5);
  auto da = a.decide(view);
  auto db = b.decide(view);
  EXPECT_FALSE(da.empty());
  EXPECT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i], db[i]);
}

// ---------------------------------------------------------------------------
// Collector app end-to-end: reports aggregate on one bee; the greedy
// optimizer issues migration orders that actually move bees.
// ---------------------------------------------------------------------------

class CollectorTest : public ::testing::Test {
 protected:
  AppSet apps_;
};

TEST_F(CollectorTest, ReportsAggregateOnSingleCollectorBee) {
  apps_.emplace<CounterApp>();
  apps_.emplace<CollectorApp>(std::make_shared<NoopStrategy>(), 3);

  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 4 * kSecond;
  SimCluster sim(config, apps_);
  sim.start();

  for (HiveId h = 0; h < 3; ++h) {
    sim.hive(h).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(h), 1}, 0, kNoBee, h, 0));
  }
  sim.run_until(3 * kSecond + kMillisecond);

  AppId collector = apps_.find_by_name("platform.collector")->id();
  auto records = sim.registry().live_bees();
  std::size_t n_collectors = 0;
  Bee* collector_bee = nullptr;
  for (const BeeRecord& rec : records) {
    if (rec.app != collector) continue;
    ++n_collectors;
    collector_bee = sim.hive(rec.hive).find_bee(rec.id);
  }
  EXPECT_EQ(n_collectors, 1u);
  ASSERT_NE(collector_bee, nullptr);

  ClusterView view =
      CollectorApp::view_from_store(collector_bee->store(), 3);
  EXPECT_EQ(view.n_hives, 3u);
  EXPECT_EQ(view.hive_cells.size(), 3u);  // every hive reported
  EXPECT_FALSE(view.bees.empty());
}

TEST_F(CollectorTest, CausationAnalyticsTrackEmissionRatios) {
  // CounterQuery -> CounterValue is 1:1; Incr emits nothing.
  apps_.emplace<CounterApp>();
  apps_.emplace<testing::SinkApp>();
  apps_.emplace<CollectorApp>(std::make_shared<NoopStrategy>(), 2);

  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 3 * kSecond;
  SimCluster sim(config, apps_);
  sim.start();
  for (int i = 0; i < 10; ++i) {
    sim.hive(0).inject(
        MessageEnvelope::make(Incr{"c", 1}, 0, kNoBee, 0, sim.now()));
    sim.hive(1).inject(MessageEnvelope::make(testing::CounterQuery{"c"}, 0,
                                             kNoBee, 1, sim.now()));
  }
  sim.run_until(3 * kSecond);
  sim.run_to_idle();

  AppId collector = apps_.find_by_name("platform.collector")->id();
  AppId counter = apps_.find_by_name("test.counter")->id();
  const StateStore* store = nullptr;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == collector) {
      store = &sim.hive(rec.hive).find_bee(rec.id)->store();
    }
  }
  ASSERT_NE(store, nullptr);
  auto rows = CollectorApp::causation_from_store(*store);
  bool found = false;
  for (const auto& row : rows) {
    if (row.app == counter && row.in == msg_type_id<testing::CounterQuery>() &&
        row.out == msg_type_id<testing::CounterValue>()) {
      found = true;
      EXPECT_EQ(row.emitted, 10u);
      EXPECT_EQ(row.inputs, 10u);
      EXPECT_DOUBLE_EQ(row.ratio, 1.0);
    }
  }
  EXPECT_TRUE(found) << "CounterQuery -> CounterValue edge missing";
}

TEST_F(CollectorTest, GreedyOptimizerMovesBeeTowardItsTraffic) {
  // Pinned "source" app on hive 2 keeps sending to a movable counter bee
  // that starts on hive 0.
  struct SourceApp : App {
    SourceApp() : App("test.source", /*pinned=*/true) {
      every_foreach(kSecond / 2, "src",
                    [](AppContext& ctx, const MessageEnvelope&) {
                      for (int i = 0; i < 4; ++i) {
                        ctx.emit(Incr{"hot", 1});
                      }
                    });
      on<Incr>([](const Incr& m) {
        return m.key == "seed" ? CellSet::single("src", "cell")
                               : CellSet{};
      },
               [](AppContext& ctx, const Incr&) {
                 ctx.state().put_as("src", "cell", I64{1});
               });
    }
  };
  apps_.emplace<CounterApp>();
  apps_.emplace<SourceApp>();
  apps_.emplace<CollectorApp>(
      std::make_shared<GreedyFollowSources>(
          GreedyConfig{.majority_fraction = 0.5, .min_messages = 4}),
      3, CollectorConfig{.optimize_period = 2 * kSecond});

  ClusterConfig config;
  config.n_hives = 3;
  config.hive.metrics_period = kSecond;
  config.hive.timers_until = 12 * kSecond;
  SimCluster sim(config, apps_);
  sim.start();

  // Seed: the counter bee lands on hive 0; the source bee on hive 2.
  sim.hive(0).inject(
      MessageEnvelope::make(Incr{"hot", 1}, 0, kNoBee, 0, 0));
  sim.hive(2).inject(
      MessageEnvelope::make(Incr{"seed", 1}, 0, kNoBee, 2, 0));
  sim.run_until(12 * kSecond);
  sim.run_to_idle();

  AppId counter = apps_.find_by_name("test.counter")->id();
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != counter) continue;
    EXPECT_EQ(rec.hive, 2u)
        << "counter bee should have migrated next to its message source";
  }
}

}  // namespace
}  // namespace beehive
