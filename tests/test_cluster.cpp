// Unit tests for the cluster layer: channel metering, the cell registry
// (lock service) and its client cache, and the discrete-event scheduler.
#include <gtest/gtest.h>

#include "cluster/channel.h"
#include "cluster/registry.h"
#include "cluster/sim.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

// ---------------------------------------------------------------------------
// ChannelMeter
// ---------------------------------------------------------------------------

TEST(ChannelMeter, MatrixAccumulates) {
  ChannelMeter meter(3);
  meter.record(0, 1, 100, 0);
  meter.record(0, 1, 50, kSecond);
  meter.record(2, 0, 10, 0);
  EXPECT_EQ(meter.matrix_bytes(0, 1), 150u);
  EXPECT_EQ(meter.matrix_messages(0, 1), 2u);
  EXPECT_EQ(meter.matrix_bytes(2, 0), 10u);
  EXPECT_EQ(meter.matrix_bytes(1, 0), 0u);
  EXPECT_EQ(meter.total_bytes(), 160u);
  EXPECT_EQ(meter.total_messages(), 3u);
}

TEST(ChannelMeter, BandwidthSeriesBuckets) {
  ChannelMeter meter(2, kSecond);
  meter.record(0, 1, 1024, 0);
  meter.record(0, 1, 2048, kSecond + 1);
  meter.record(1, 0, 512, 3 * kSecond + 500);
  auto series = meter.bandwidth_series();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0], 1024u);
  EXPECT_EQ(series[1], 2048u);
  EXPECT_EQ(series[2], 0u);
  EXPECT_EQ(series[3], 512u);
  auto kbps = meter.bandwidth_kbps();
  EXPECT_DOUBLE_EQ(kbps[0], 1.0);
  EXPECT_DOUBLE_EQ(kbps[1], 2.0);
}

TEST(ChannelMeter, HiveShareIdentifiesHotspot) {
  ChannelMeter meter(4);
  // Everything flows to/from hive 2.
  meter.record(0, 2, 100, 0);
  meter.record(1, 2, 100, 0);
  meter.record(2, 3, 100, 0);
  EXPECT_DOUBLE_EQ(meter.hive_share(2), 1.0);
  EXPECT_DOUBLE_EQ(meter.hotspot_share(), 1.0);
  meter.record(0, 1, 300, 0);
  EXPECT_DOUBLE_EQ(meter.hive_share(2), 0.5);
}

TEST(ChannelMeter, ResetClearsEverything) {
  ChannelMeter meter(2);
  meter.record(0, 1, 100, 0);
  meter.reset();
  EXPECT_EQ(meter.total_bytes(), 0u);
  EXPECT_TRUE(meter.bandwidth_series().empty());
}

TEST(ChannelMeter, AsciiHeatmapShape) {
  ChannelMeter meter(10);
  meter.record(0, 9, 1000, 0);
  std::string map = meter.ascii_heatmap(5);
  // 5 rows of 5 cells + newlines.
  EXPECT_EQ(map.size(), 5u * 6u);
  EXPECT_NE(map.find('@'), std::string::npos);
}

// ---------------------------------------------------------------------------
// RegistryService
// ---------------------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  static constexpr AppId kApp = 77;
  ChannelMeter meter_{4};
  RegistryService registry_{4, &meter_, 0};
};

TEST_F(RegistryTest, CreatesBeeOnRequestingHive) {
  auto out = registry_.resolve_or_create(kApp, CellSet::single("d", "k"), 2,
                                         false, 0);
  EXPECT_TRUE(out.created);
  EXPECT_EQ(out.hive, 2u);
  EXPECT_TRUE(out.losers.empty());
  EXPECT_EQ(bee_home_hive(out.bee), 2u);
  EXPECT_EQ(registry_.hive_of(out.bee), 2u);
}

TEST_F(RegistryTest, SecondResolveFindsSameBee) {
  auto a = registry_.resolve_or_create(kApp, CellSet::single("d", "k"), 1,
                                       false, 0);
  auto b = registry_.resolve_or_create(kApp, CellSet::single("d", "k"), 3,
                                       false, 0);
  EXPECT_FALSE(b.created);
  EXPECT_EQ(a.bee, b.bee);
  EXPECT_EQ(b.hive, 1u);
}

TEST_F(RegistryTest, DisjointCellsGetDistinctBees) {
  auto a = registry_.resolve_or_create(kApp, CellSet::single("d", "k1"), 0,
                                       false, 0);
  auto b = registry_.resolve_or_create(kApp, CellSet::single("d", "k2"), 1,
                                       false, 0);
  EXPECT_NE(a.bee, b.bee);
  EXPECT_EQ(registry_.live_bee_count(), 2u);
}

TEST_F(RegistryTest, AppsAreIsolated) {
  auto a =
      registry_.resolve_or_create(1, CellSet::single("d", "k"), 0, false, 0);
  auto b =
      registry_.resolve_or_create(2, CellSet::single("d", "k"), 0, false, 0);
  EXPECT_NE(a.bee, b.bee);
}

TEST_F(RegistryTest, IntersectingSetsMergeToOneBee) {
  auto a = registry_.resolve_or_create(kApp, CellSet{{"d", "k1"}}, 0, false,
                                       0);
  auto b = registry_.resolve_or_create(kApp, CellSet{{"d", "k2"}}, 1, false,
                                       0);
  // {k1, k2} spans both bees: one must win, the other is reported a loser.
  auto c = registry_.resolve_or_create(kApp, CellSet{{"d", "k1"}, {"d", "k2"}},
                                       2, false, 0);
  EXPECT_EQ(c.losers.size(), 1u);
  EXPECT_TRUE(c.bee == a.bee || c.bee == b.bee);
  EXPECT_NE(c.losers[0].bee, c.bee);
  // Both cells now resolve to the winner.
  auto k1 = registry_.resolve_or_create(kApp, CellSet{{"d", "k1"}}, 3, false,
                                        0);
  auto k2 = registry_.resolve_or_create(kApp, CellSet{{"d", "k2"}}, 3, false,
                                        0);
  EXPECT_EQ(k1.bee, c.bee);
  EXPECT_EQ(k2.bee, c.bee);
  EXPECT_EQ(registry_.live_bee_count(), 1u);
}

TEST_F(RegistryTest, LoserForwardsToWinner) {
  auto a =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k1"}}, 0, false, 0);
  auto b =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k2"}}, 1, false, 0);
  auto c = registry_.resolve_or_create(kApp, CellSet{{"d", "k1"}, {"d", "k2"}},
                                       2, false, 0);
  BeeId loser = c.losers[0].bee;
  EXPECT_EQ(registry_.live_successor(loser), c.bee);
  EXPECT_EQ(registry_.hive_of(loser), registry_.hive_of(c.bee));
  (void)a;
  (void)b;
}

TEST_F(RegistryTest, WholeDictAbsorbsAllKeysOfDict) {
  auto k1 =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k1"}}, 0, false, 0);
  auto k2 =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k2"}}, 1, false, 0);
  auto whole = registry_.resolve_or_create(kApp, CellSet::whole_dict("d"), 2,
                                           false, 0);
  EXPECT_EQ(whole.losers.size(), 1u);  // two owners -> one winner, one loser
  EXPECT_TRUE(whole.bee == k1.bee || whole.bee == k2.bee);
  // New keys of d now belong to the whole-dict owner.
  auto k3 =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k3"}}, 3, false, 0);
  EXPECT_FALSE(k3.created);
  EXPECT_EQ(k3.bee, whole.bee);
}

TEST_F(RegistryTest, WholeDictFirstThenKeysCentralizesImmediately) {
  auto whole = registry_.resolve_or_create(kApp, CellSet::whole_dict("d"), 3,
                                           false, 0);
  EXPECT_TRUE(whole.created);
  for (int i = 0; i < 5; ++i) {
    auto k = registry_.resolve_or_create(
        kApp, CellSet{{"d", "k" + std::to_string(i)}}, static_cast<HiveId>(i % 4),
        false, 0);
    EXPECT_EQ(k.bee, whole.bee) << i;
  }
  EXPECT_EQ(registry_.live_bee_count(), 1u);
}

TEST_F(RegistryTest, PinnedBeeWinsMerges) {
  auto pinned =
      registry_.resolve_or_create(kApp, CellSet{{"d", "a"}}, 0, true, 0);
  auto other =
      registry_.resolve_or_create(kApp, CellSet{{"d", "b"}}, 1, false, 0);
  auto merged = registry_.resolve_or_create(
      kApp, CellSet{{"d", "a"}, {"d", "b"}}, 2, false, 0);
  EXPECT_EQ(merged.bee, pinned.bee);
  EXPECT_EQ(merged.losers[0].bee, other.bee);
}

TEST_F(RegistryTest, MoveBeeUpdatesLocation) {
  auto out =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k"}}, 0, false, 0);
  registry_.move_bee(out.bee, 3, 0);
  EXPECT_EQ(registry_.hive_of(out.bee), 3u);
}

TEST_F(RegistryTest, PlacementHookOverridesCreation) {
  registry_.set_placement_hook(
      [](AppId, const CellSet&, HiveId) -> HiveId { return 1; });
  auto out =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k"}}, 3, false, 0);
  EXPECT_EQ(out.hive, 1u);
}

TEST_F(RegistryTest, CellsOnHiveCounts) {
  registry_.resolve_or_create(kApp, CellSet{{"d", "a"}, {"d", "b"}}, 1, false,
                              0);
  registry_.resolve_or_create(kApp, CellSet{{"d", "c"}}, 1, false, 0);
  registry_.resolve_or_create(kApp, CellSet{{"d", "z"}}, 2, false, 0);
  EXPECT_EQ(registry_.cells_on_hive(1), 3u);
  EXPECT_EQ(registry_.cells_on_hive(2), 1u);
  EXPECT_EQ(registry_.cells_on_hive(3), 0u);
}

TEST_F(RegistryTest, RemoteRpcIsBilledLocalIsNot) {
  std::uint64_t before = meter_.total_bytes();
  registry_.resolve_or_create(kApp, CellSet{{"d", "k"}}, 0, false, 0);
  EXPECT_EQ(meter_.total_bytes(), before);  // hive 0 hosts the registry
  registry_.resolve_or_create(kApp, CellSet{{"d", "k2"}}, 2, false, 0);
  EXPECT_GT(meter_.total_bytes(), before);
  EXPECT_GT(meter_.matrix_bytes(2, 0), 0u);  // request
  EXPECT_GT(meter_.matrix_bytes(0, 2), 0u);  // response
}

// ---------------------------------------------------------------------------
// Transfer-fence accounting
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, FreshBeeHasZeroExpectedTransfers) {
  auto out =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k"}}, 0, false, 0);
  EXPECT_TRUE(out.created);
  EXPECT_EQ(out.transfers_expected, 0u);
  EXPECT_EQ(registry_.expected_transfers(out.bee), 0u);
}

TEST_F(RegistryTest, MergeBumpsWinnerExpectedByOnePerLoser) {
  registry_.resolve_or_create(kApp, CellSet{{"d", "a"}}, 0, false, 0);
  registry_.resolve_or_create(kApp, CellSet{{"d", "b"}}, 1, false, 0);
  registry_.resolve_or_create(kApp, CellSet{{"d", "c"}}, 2, false, 0);
  auto merged = registry_.resolve_or_create(
      kApp, CellSet{{"d", "a"}, {"d", "b"}, {"d", "c"}}, 3, false, 0);
  EXPECT_EQ(merged.losers.size(), 2u);
  EXPECT_EQ(merged.transfers_expected, 2u);
  EXPECT_EQ(registry_.expected_transfers(merged.bee), 2u);
}

TEST_F(RegistryTest, ChainedMergeInheritsLoserLedger) {
  // a+b merge (winner W1 expects 1), then W1 loses to the a+b+c winner:
  // the super-winner inherits 1 (W1 snapshot) + W1's own 1.
  registry_.resolve_or_create(kApp, CellSet{{"d", "a"}}, 0, false, 0);
  registry_.resolve_or_create(kApp, CellSet{{"d", "b"}}, 1, false, 0);
  auto first = registry_.resolve_or_create(
      kApp, CellSet{{"d", "a"}, {"d", "b"}}, 2, false, 0);
  ASSERT_EQ(first.transfers_expected, 1u);
  registry_.resolve_or_create(kApp, CellSet{{"d", "c"}}, 3, false, 0);
  auto second = registry_.resolve_or_create(
      kApp, CellSet{{"d", "b"}, {"d", "c"}}, 3, false, 0);
  // Winner is `first` (more cells): inherits c-bee's ledger (1 + 0).
  EXPECT_EQ(second.bee, first.bee);
  EXPECT_EQ(second.transfers_expected, 2u);
}

TEST_F(RegistryTest, AddAndResetExpectedTransfers) {
  auto out =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k"}}, 0, false, 0);
  registry_.add_expected_transfer(out.bee);
  registry_.add_expected_transfer(out.bee);
  EXPECT_EQ(registry_.expected_transfers(out.bee), 2u);
  registry_.reset_expected_transfers(out.bee);
  EXPECT_EQ(registry_.expected_transfers(out.bee), 0u);
  EXPECT_EQ(registry_.expected_transfers(0xdeadbeef), 0u);
}

// ---------------------------------------------------------------------------
// Registry client cache
// ---------------------------------------------------------------------------

TEST_F(RegistryTest, ClientCacheHitAvoidsTraffic) {
  RegistryService::Client client(registry_, 2);
  auto first =
      client.resolve_or_create(kApp, CellSet{{"d", "k"}}, false, 0);
  std::uint64_t bytes_after_miss = meter_.total_bytes();
  auto second =
      client.resolve_or_create(kApp, CellSet{{"d", "k"}}, false, 0);
  EXPECT_EQ(second.bee, first.bee);
  EXPECT_EQ(meter_.total_bytes(), bytes_after_miss);  // no extra RPC
  EXPECT_EQ(client.cache_hits(), 1u);
  EXPECT_EQ(client.cache_misses(), 1u);
}

TEST_F(RegistryTest, InvalidationForcesRefetch) {
  RegistryService::Client client(registry_, 2);
  auto first = client.resolve_or_create(kApp, CellSet{{"d", "k"}}, false, 0);
  registry_.move_bee(first.bee, 3, 0);  // invalidates the client's cache
  auto second = client.resolve_or_create(kApp, CellSet{{"d", "k"}}, false, 0);
  EXPECT_EQ(second.bee, first.bee);
  EXPECT_EQ(second.hive, 3u);
  EXPECT_EQ(client.cache_misses(), 2u);
}

TEST_F(RegistryTest, CacheSpanningTwoBeesFallsThrough) {
  RegistryService::Client client(registry_, 1);
  auto a = client.resolve_or_create(kApp, CellSet{{"d", "a"}}, false, 0);
  auto b = client.resolve_or_create(kApp, CellSet{{"d", "b"}}, false, 0);
  ASSERT_NE(a.bee, b.bee);
  // Cached individually, but the pair requires a merge decision -> RPC.
  auto merged = client.resolve_or_create(
      kApp, CellSet{{"d", "a"}, {"d", "b"}}, false, 0);
  EXPECT_EQ(merged.losers.size(), 1u);
}

TEST_F(RegistryTest, ClientHiveOfCachesLocation) {
  RegistryService::Client client(registry_, 3);
  auto out =
      registry_.resolve_or_create(kApp, CellSet{{"d", "k"}}, 0, false, 0);
  auto h1 = client.hive_of(out.bee, 0);
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(*h1, 0u);
  std::uint64_t bytes = meter_.total_bytes();
  auto h2 = client.hive_of(out.bee, 0);
  EXPECT_EQ(*h2, 0u);
  EXPECT_EQ(meter_.total_bytes(), bytes);
  EXPECT_FALSE(client.hive_of(0xdeadbeefdeadbeefull, 0).has_value());
}

// ---------------------------------------------------------------------------
// SimCluster event scheduling
// ---------------------------------------------------------------------------

TEST(SimClusterSched, EventsRunInTimeOrder) {
  AppSet apps;
  SimCluster sim({.n_hives = 1}, apps);
  std::vector<int> order;
  sim.schedule_after(0, 300, [&order]() { order.push_back(3); });
  sim.schedule_after(0, 100, [&order]() { order.push_back(1); });
  sim.schedule_after(0, 200, [&order]() { order.push_back(2); });
  sim.run_to_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimClusterSched, TiesBreakByScheduleOrder) {
  AppSet apps;
  SimCluster sim({.n_hives = 1}, apps);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_after(0, 50, [&order, i]() { order.push_back(i); });
  }
  sim.run_to_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClusterSched, RunUntilLeavesFutureEvents) {
  AppSet apps;
  SimCluster sim({.n_hives = 1}, apps);
  int ran = 0;
  sim.schedule_after(0, 100, [&ran]() { ++ran; });
  sim.schedule_after(0, 5000, [&ran]() { ++ran; });
  sim.run_until(1000);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_to_idle();
  EXPECT_EQ(ran, 2);
}

TEST(SimClusterSched, NestedSchedulingWorks) {
  AppSet apps;
  SimCluster sim({.n_hives = 1}, apps);
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 10) sim.schedule_after(0, 10, chain);
  };
  sim.schedule_after(0, 10, chain);
  sim.run_to_idle();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 100);
}

}  // namespace
}  // namespace beehive
