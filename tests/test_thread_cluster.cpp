// Tests of the threaded in-process runtime: the same hive/bee/registry
// code as the simulator, but with each hive on its own OS thread. These
// verify that the platform's consistency guarantees survive real
// concurrency.
#include <gtest/gtest.h>

#include <atomic>

#include "cluster/thread_cluster.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;
using testing::PairIncr;
using testing::SumQuery;

class ThreadClusterTest : public ::testing::Test {
 protected:
  ThreadClusterTest() { apps_.emplace<CounterApp>(); }

  ThreadCluster make(std::size_t n_hives) {
    ThreadClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;
    return ThreadCluster(config, apps_);
  }

  void inject(ThreadCluster& cluster, HiveId hive, Incr msg) {
    cluster.post(hive, [&cluster, hive, msg]() {
      cluster.hive(hive).inject(
          MessageEnvelope::make(msg, 0, kNoBee, hive, cluster.now()));
    });
  }

  std::int64_t counter_value(ThreadCluster& cluster, const std::string& key) {
    AppId app = apps_.find_by_name("test.counter")->id();
    std::int64_t value = -1;
    for (const BeeRecord& rec : cluster.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = cluster.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (auto v = bee->store().dict(CounterApp::kDict).get_as<I64>(key)) {
        EXPECT_EQ(value, -1) << "key " << key << " present on two bees";
        value = v->v;
      }
    }
    return value;
  }

  AppSet apps_;
};

TEST_F(ThreadClusterTest, StartStopIsIdempotent) {
  ThreadCluster cluster = make(2);
  cluster.start();
  cluster.start();
  cluster.stop();
  cluster.stop();
}

TEST_F(ThreadClusterTest, SingleKeyAccumulatesAcrossThreads) {
  ThreadCluster cluster = make(4);
  cluster.start();
  constexpr int kPerHive = 50;
  for (int i = 0; i < kPerHive; ++i) {
    for (HiveId h = 0; h < 4; ++h) inject(cluster, h, Incr{"shared", 1});
  }
  cluster.wait_idle();
  EXPECT_EQ(counter_value(cluster, "shared"), 4 * kPerHive);
  cluster.stop();
}

TEST_F(ThreadClusterTest, ManyKeysLandOnTheirInjectingHives) {
  ThreadCluster cluster = make(4);
  cluster.start();
  for (int i = 0; i < 40; ++i) {
    inject(cluster, static_cast<HiveId>(i % 4),
           Incr{"k" + std::to_string(i), 1});
  }
  cluster.wait_idle();
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(counter_value(cluster, "k" + std::to_string(i)), 1);
  }
  // 40 bees, each on the hive that first saw its key.
  EXPECT_EQ(cluster.registry().live_bee_count(), 40u);
  cluster.stop();
}

TEST_F(ThreadClusterTest, ConcurrentMergesPreserveEveryIncrement) {
  ThreadCluster cluster = make(4);
  cluster.start();
  // Interleave per-key increments with pair messages that force merges,
  // from all four threads at once.
  for (int round = 0; round < 10; ++round) {
    for (HiveId h = 0; h < 4; ++h) {
      inject(cluster, h, Incr{"a", 1});
      inject(cluster, h, Incr{"b", 1});
      cluster.post(h, [&cluster, h]() {
        cluster.hive(h).inject(MessageEnvelope::make(
            PairIncr{"a", "b"}, 0, kNoBee, h, cluster.now()));
      });
    }
  }
  cluster.wait_idle();
  // 40 Incr{a} + 40 PairIncr = 80 (same for b). One bee owns both.
  EXPECT_EQ(counter_value(cluster, "a"), 80);
  EXPECT_EQ(counter_value(cluster, "b"), 80);
  cluster.stop();
}

TEST_F(ThreadClusterTest, MigrationUnderLiveTraffic) {
  ThreadCluster cluster = make(3);
  cluster.start();
  inject(cluster, 0, Incr{"m", 1});
  cluster.wait_idle();
  BeeId bee = cluster.registry().live_bees()[0].id;

  // Keep injecting while migrating back and forth.
  for (int i = 0; i < 60; ++i) {
    inject(cluster, static_cast<HiveId>(i % 3), Incr{"m", 1});
    if (i == 20) {
      cluster.post(0, [&cluster, bee]() {
        cluster.hive(0).request_migration(bee, 2);
      });
    }
    if (i == 40) {
      cluster.post(2, [&cluster, bee]() {
        cluster.hive(2).request_migration(bee, 1);
      });
    }
  }
  cluster.wait_idle();
  EXPECT_EQ(counter_value(cluster, "m"), 61);
  auto hive = cluster.registry().hive_of(bee);
  ASSERT_TRUE(hive.has_value());
  cluster.stop();
}

TEST_F(ThreadClusterTest, WholeDictCentralizationUnderConcurrency) {
  ThreadCluster cluster = make(4);
  cluster.start();
  for (int i = 0; i < 32; ++i) {
    inject(cluster, static_cast<HiveId>(i % 4),
           Incr{"c" + std::to_string(i), 1});
  }
  cluster.wait_idle();
  cluster.post(1, [&cluster]() {
    cluster.hive(1).inject(MessageEnvelope::make(SumQuery{1}, 0, kNoBee, 1,
                                                 cluster.now()));
  });
  cluster.wait_idle();
  AppId app = apps_.find_by_name("test.counter")->id();
  std::size_t bees = 0;
  for (const BeeRecord& rec : cluster.registry().live_bees()) {
    if (rec.app == app) ++bees;
  }
  EXPECT_EQ(bees, 1u);
  cluster.stop();
}

TEST_F(ThreadClusterTest, TimersFireOnThreadedRuntime) {
  struct TickerApp : App {
    explicit TickerApp(std::atomic<int>* counter) : App("test.ticker") {
      every(10 * kMillisecond,
            [](const MessageEnvelope&) {
              return CellSet::single("t", "cell");
            },
            [counter](AppContext&, const MessageEnvelope&) {
              counter->fetch_add(1);
            });
    }
  };
  std::atomic<int> ticks{0};
  AppSet apps;
  apps.emplace<TickerApp>(&ticks);
  ThreadClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 0;
  ThreadCluster cluster(config, apps);
  cluster.start();
  // Wait until the timer demonstrably fired a few times.
  for (int i = 0; i < 200 && ticks.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  EXPECT_GE(ticks.load(), 3);
}

TEST_F(ThreadClusterTest, MeterSeesCrossHiveTraffic) {
  ThreadCluster cluster = make(2);
  cluster.start();
  inject(cluster, 0, Incr{"x", 1});
  cluster.wait_idle();
  inject(cluster, 1, Incr{"x", 1});  // crosses 1 -> 0
  cluster.wait_idle();
  EXPECT_GT(cluster.meter().total_bytes(), 0u);
  EXPECT_EQ(counter_value(cluster, "x"), 2);
  cluster.stop();
}

}  // namespace
}  // namespace beehive
