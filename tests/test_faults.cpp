// Lossy-network fault injection and the reliable control-channel
// transport: FaultPlan semantics, effectively-once delivery under drop /
// duplication / jitter, registry RPC retry + backoff, migration
// timeout-retry-abort, and a convergence soak with real control apps.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "apps/learning_switch.h"
#include "apps/messages.h"
#include "apps/routing.h"
#include "cluster/sim.h"
#include "instrument/collector.h"
#include "placement/strategy.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::I64;
using testing::Incr;

// ---------------------------------------------------------------------------
// FaultPlan unit tests
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, InactiveByDefaultAndActivatedByConfig) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.partition(1, 2);
  EXPECT_TRUE(plan.active());
  plan.heal(1, 2);
  EXPECT_FALSE(plan.active());
  plan.set_default_link({.drop = 0.1});
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, PartitionBlocksBothDirectionsUntilHealed) {
  FaultPlan plan;
  Xoshiro256 rng(1);
  plan.partition(1, 2);
  EXPECT_TRUE(plan.partitioned(1, 2));
  EXPECT_TRUE(plan.partitioned(2, 1));
  EXPECT_EQ(plan.partitions_active(), 1u);
  EXPECT_EQ(plan.decide(1, 2, 0, rng).copies, 0);
  EXPECT_EQ(plan.decide(2, 1, 0, rng).copies, 0);
  EXPECT_EQ(plan.decide(1, 3, 0, rng).copies, 1);  // other links unaffected
  EXPECT_EQ(plan.stats().frames_partitioned, 2u);
  plan.heal(1, 2);
  EXPECT_EQ(plan.decide(1, 2, 0, rng).copies, 1);
  EXPECT_EQ(plan.partitions_active(), 0u);
}

TEST(FaultPlanTest, DeterministicFatesAndStats) {
  FaultPlan plan;
  Xoshiro256 rng(1);
  plan.set_link(0, 1, {.drop = 1.0});
  plan.set_link(1, 0, {.duplicate = 1.0});
  plan.set_link(2, 3, {.jitter = 1.0, .jitter_max = 5 * kMillisecond});
  plan.set_link(3, 2, {.reorder = 1.0});

  EXPECT_EQ(plan.decide(0, 1, 100, rng).copies, 0);
  FaultPlan::Delivery dup = plan.decide(1, 0, 100, rng);
  EXPECT_EQ(dup.copies, 2);
  FaultPlan::Delivery jit = plan.decide(2, 3, 100, rng);
  EXPECT_EQ(jit.copies, 1);
  EXPECT_LT(jit.extra_delay[0], 5 * kMillisecond);
  FaultPlan::Delivery reord = plan.decide(3, 2, 100, rng);
  EXPECT_EQ(reord.extra_delay[0], 100);  // exactly one base latency

  EXPECT_EQ(plan.stats().frames_dropped, 1u);
  EXPECT_EQ(plan.stats().frames_duplicated, 1u);
  EXPECT_GE(plan.stats().frames_delayed, 1u);

  // Identical plan + seed replays the identical fate sequence.
  FaultPlan plan2;
  Xoshiro256 rng2(1);
  plan2.set_link(0, 1, {.drop = 1.0});
  plan2.set_link(1, 0, {.duplicate = 1.0});
  plan2.set_link(2, 3, {.jitter = 1.0, .jitter_max = 5 * kMillisecond});
  plan2.set_link(3, 2, {.reorder = 1.0});
  EXPECT_EQ(plan2.decide(0, 1, 100, rng2).copies, 0);
  EXPECT_EQ(plan2.decide(1, 0, 100, rng2).copies, 2);
  EXPECT_EQ(plan2.decide(2, 3, 100, rng2).extra_delay[0], jit.extra_delay[0]);
}

TEST(FaultPlanTest, RpcLossFollowsPartitionAndDropRate) {
  FaultPlan plan;
  Xoshiro256 rng(1);
  EXPECT_FALSE(plan.rpc_lost(1, 0, rng));  // clean plan never loses
  plan.set_link(1, 0, {.drop = 1.0});
  EXPECT_TRUE(plan.rpc_lost(1, 0, rng));
  EXPECT_FALSE(plan.rpc_lost(0, 0, rng));  // local calls cannot be lost
  plan.partition(2, 0);
  EXPECT_TRUE(plan.rpc_lost(2, 0, rng));
  EXPECT_EQ(plan.stats().rpcs_lost, 2u);
}

// ---------------------------------------------------------------------------
// ChannelMeter robustness
// ---------------------------------------------------------------------------

TEST(ChannelMeterFaultTest, OutOfRangeSamplesAreDroppedNotCrashed) {
  ChannelMeter meter(2, kSecond);
  meter.record(0, 1, 100, 0);
  meter.record(7, 1, 100, 0);  // bogus sender
  meter.record(0, 9, 100, 0);  // bogus receiver
  EXPECT_EQ(meter.total_bytes(), 100u);
  EXPECT_EQ(meter.total_messages(), 1u);
}

// ---------------------------------------------------------------------------
// Reliable transport over a hostile channel
// ---------------------------------------------------------------------------

class FaultSimTest : public ::testing::Test {
 protected:
  FaultSimTest() { apps_.emplace<CounterApp>(); }

  SimCluster make_sim(std::size_t n_hives, bool transport = true) {
    ClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;
    config.hive.transport.enabled = transport;
    return SimCluster(config, apps_);
  }

  template <typename M>
  void inject(SimCluster& sim, HiveId hive, M msg) {
    sim.hive(hive).inject(
        MessageEnvelope::make(std::move(msg), 0, kNoBee, hive, sim.now()));
  }

  template <typename M>
  void send(SimCluster& sim, HiveId hive, M msg) {
    inject(sim, hive, std::move(msg));
    sim.run_to_idle();
  }

  std::int64_t counter_value(SimCluster& sim, const std::string& key) {
    AppId app = apps_.find_by_name("test.counter")->id();
    for (const BeeRecord& rec : sim.registry().live_bees()) {
      if (rec.app != app) continue;
      Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
      if (bee == nullptr) continue;
      if (auto v = bee->store().dict(CounterApp::kDict).get_as<I64>(key)) {
        return v->v;
      }
    }
    return -1;
  }

  AppSet apps_;
};

TEST_F(FaultSimTest, EffectivelyOnceUnderHeavyDropAndDuplication) {
  SimCluster sim = make_sim(2);
  sim.start();
  // Home five counter bees on hive 0 and warm hive 1's registry cache over
  // a clean channel, so the lossy phase below exercises the transport (the
  // raw-datagram registry RPCs are covered separately).
  for (int k = 0; k < 5; ++k) {
    send(sim, 0, Incr{"k" + std::to_string(k), 1});
    send(sim, 1, Incr{"k" + std::to_string(k), 1});
  }
  sim.faults().set_default_link({.drop = 0.3,
                                 .duplicate = 0.25,
                                 .jitter = 0.5,
                                 .jitter_max = 2 * kMillisecond});
  // 40 remote increments from hive 1, many in flight simultaneously so the
  // channel has traffic to scramble.
  for (int i = 0; i < 40; ++i) {
    inject(sim, 1, Incr{"k" + std::to_string(i % 5), 1});
    sim.run_for(100 * kMicrosecond);
  }
  sim.run_to_idle();

  // Exact counts despite ~30% loss and ~25% duplication: the transport
  // retransmitted every loss and deduplicated every extra copy.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(counter_value(sim, "k" + std::to_string(k)), 10)
        << "key k" << k;
  }
  const TransportCounters& t1 = sim.hive(1).transport_counters();
  const TransportCounters& t0 = sim.hive(0).transport_counters();
  EXPECT_GT(t1.retransmits, 0u);
  EXPECT_GT(t0.dup_frames_dropped + t1.dup_frames_dropped, 0u);
  EXPECT_GT(sim.faults().stats().frames_dropped, 0u);
  EXPECT_GT(sim.faults().stats().frames_duplicated, 0u);
  EXPECT_EQ(t0.frames_abandoned + t1.frames_abandoned, 0u);
}

TEST_F(FaultSimTest, TransportRestoresOrderAcrossForcedReordering) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, Incr{"x", 1});
  send(sim, 1, Incr{"x", 1});  // warm hive 1's registry cache
  sim.faults().set_link(1, 0, {.reorder = 0.5});
  for (int i = 0; i < 30; ++i) {
    inject(sim, 1, Incr{"x", 1});
    sim.run_for(50 * kMicrosecond);
  }
  sim.run_to_idle();
  EXPECT_EQ(counter_value(sim, "x"), 32);
  EXPECT_GT(sim.hive(0).transport_counters().reorder_buffered, 0u);
  EXPECT_EQ(sim.faults().stats().frames_dropped, 0u);
}

TEST_F(FaultSimTest, PartitionHealsAndTrafficResumes) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"p", 5});
  sim.faults().partition(1, 2);
  // Frames 2 -> 1 are blackholed; the transport buffers and retransmits.
  inject(sim, 2, Incr{"p", 1});
  sim.run_for(20 * kMillisecond);
  EXPECT_EQ(counter_value(sim, "p"), 5);  // not yet delivered
  sim.faults().heal(1, 2);
  sim.run_to_idle();
  EXPECT_EQ(counter_value(sim, "p"), 6);  // retransmission got through
  EXPECT_GT(sim.hive(2).transport_counters().retransmits, 0u);
  EXPECT_EQ(sim.hive(2).transport_counters().frames_abandoned, 0u);
}

// ---------------------------------------------------------------------------
// Registry RPC retry and backoff
// ---------------------------------------------------------------------------

TEST_F(FaultSimTest, RegistryRpcRetriesThenFailsAndBacksOff) {
  SimCluster sim = make_sim(2, /*transport=*/false);
  sim.start();
  sim.faults().set_link(1, 0, {.drop = 1.0});

  // Every attempt of the miss RPC is lost: the lookup fails, the message
  // is dropped, and the wasted attempts are billed to the channel.
  send(sim, 1, Incr{"r", 1});
  EXPECT_EQ(counter_value(sim, "r"), -1);
  EXPECT_EQ(sim.hive(1).counters().registry_failures, 1u);
  EXPECT_EQ(
      sim.faults().stats().rpcs_lost,
      static_cast<std::uint64_t>(RegistryService::Client::kMaxRpcAttempts));
  EXPECT_GE(sim.hive(1).registry_client().rpc_retries(),
            static_cast<std::uint64_t>(
                RegistryService::Client::kMaxRpcAttempts - 1));
  EXPECT_GE(sim.hive(1).registry_client().rpc_failures(), 1u);
  EXPECT_GT(sim.meter().matrix_bytes(1, 0), 0u);

  // Inside the backoff window lookups fail fast: no further RPC attempts
  // hit the wire.
  send(sim, 1, Incr{"r", 1});
  EXPECT_EQ(
      sim.faults().stats().rpcs_lost,
      static_cast<std::uint64_t>(RegistryService::Client::kMaxRpcAttempts));
  EXPECT_EQ(sim.hive(1).counters().registry_failures, 2u);

  // Heal the link and let the backoff expire: service resumes.
  sim.faults().set_link(1, 0, {});
  sim.run_for(10 * kMillisecond);
  send(sim, 1, Incr{"r", 1});
  EXPECT_EQ(counter_value(sim, "r"), 1);
  EXPECT_EQ(sim.hive(1).counters().registry_failures, 2u);
}

TEST_F(FaultSimTest, RegistryRpcRetriesAbsorbModerateLoss) {
  SimCluster sim = make_sim(2);  // transport on: data frames are reliable
  sim.start();
  sim.faults().set_link(1, 0, {.drop = 0.5});
  for (int i = 0; i < 10; ++i) {
    send(sim, 1, Incr{"m" + std::to_string(i), 1});
    sim.run_for(5 * kMillisecond);  // clear any backoff window
  }
  sim.run_to_idle();
  // Each new key needs one registry lookup from hive 1; an attempt dies
  // with p=0.5 but a whole lookup only with p=0.5^4. A message either
  // arrived intact (the transport absorbs the data-frame loss) or was
  // dropped on a failed lookup — and every failure is accounted for.
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    std::int64_t v = counter_value(sim, "m" + std::to_string(i));
    EXPECT_TRUE(v == 1 || v == -1) << "key m" << i << " = " << v;
    if (v == 1) ++delivered;
  }
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(10 - delivered),
            sim.hive(1).counters().registry_failures);
  EXPECT_GT(sim.hive(1).registry_client().rpc_retries(), 0u);
}

// ---------------------------------------------------------------------------
// Migration under loss: retry, then complete or abort with the bee intact
// ---------------------------------------------------------------------------

TEST_F(FaultSimTest, MigrationUnderLossCompletesOrAbortsWithBeeIntact) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"m", 5});
  BeeId bee = sim.registry().live_bees()[0].id;
  ASSERT_EQ(sim.registry().hive_of(bee), 1u);

  sim.faults().set_default_link({.drop = 0.2});
  sim.hive(1).request_migration(bee, 2);
  sim.run_to_idle();

  // Exactly one outcome: the bee lives at its origin (aborted) or at the
  // target (completed) — never both, never neither.
  auto home = sim.registry().hive_of(bee);
  ASSERT_TRUE(home.has_value());
  ASSERT_TRUE(*home == 1u || *home == 2u) << "bee on hive " << *home;
  EXPECT_NE(sim.hive(*home).find_bee(bee), nullptr);
  EXPECT_EQ(sim.hive(*home == 1u ? 2u : 1u).find_bee(bee), nullptr);
  const Hive::Counters& c = sim.hive(1).counters();
  EXPECT_EQ(c.migrations_out + c.migration_aborts, 1u);

  // State survived, and the bee still processes messages.
  sim.faults().set_default_link({});
  send(sim, 0, Incr{"m", 1});
  EXPECT_EQ(counter_value(sim, "m"), 6);
}

TEST_F(FaultSimTest, MigrationAcrossPartitionAbortsCleanly) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"p", 7});
  BeeId bee = sim.registry().live_bees()[0].id;

  sim.faults().partition(1, 2);
  sim.hive(1).request_migration(bee, 2);
  sim.run_to_idle();

  // All attempts timed out: the migration aborted, the registry was never
  // re-pointed, and the bee thawed at its origin.
  EXPECT_EQ(sim.registry().hive_of(bee), 1u);
  Bee* local = sim.hive(1).find_bee(bee);
  ASSERT_NE(local, nullptr);
  EXPECT_FALSE(local->migrating());
  const Hive::Counters& c = sim.hive(1).counters();
  EXPECT_EQ(c.migration_aborts, 1u);
  EXPECT_EQ(c.migrations_out, 0u);
  EXPECT_GE(c.migration_retries, 1u);
  // The transport eventually gave up on the partitioned link.
  EXPECT_GT(sim.hive(1).transport_counters().frames_abandoned, 0u);

  sim.faults().heal(1, 2);
  send(sim, 2, Incr{"p", 1});
  EXPECT_EQ(counter_value(sim, "p"), 8);
}

// ---------------------------------------------------------------------------
// Convergence soak: real control apps over a lossy channel end in exactly
// the state a clean channel produces.
// ---------------------------------------------------------------------------

using MacMap = std::map<std::string, std::map<std::uint64_t, std::uint16_t>>;
using RibMap = std::map<std::string,
                        std::map<std::pair<std::uint32_t, int>,
                                 std::pair<std::uint32_t, std::uint32_t>>>;

MacMap harvest_macs(SimCluster& sim, AppId app) {
  MacMap out;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != app) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    if (bee == nullptr) continue;
    if (const Dict* d = bee->store().find_dict(LearningSwitchApp::kDict)) {
      d->for_each([&out](const std::string& key, const Bytes& value) {
        MacTable table = decode_from_bytes<MacTable>(value);
        auto& macs = out[key];
        for (const MacTable::Entry& e : table.entries) {
          macs[e.mac] = e.port;
        }
      });
    }
  }
  return out;
}

RibMap harvest_rib(SimCluster& sim, AppId app) {
  RibMap out;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != app) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    if (bee == nullptr) continue;
    if (const Dict* d = bee->store().find_dict(RoutingApp::kDict)) {
      d->for_each([&out](const std::string& key, const Bytes& value) {
        PrefixTable table = decode_from_bytes<PrefixTable>(value);
        auto& routes = out[key];
        for (const RouteAnnounce& r : table.routes) {
          routes[{r.prefix, r.mask_len}] = {r.next_hop, r.metric};
        }
      });
    }
  }
  return out;
}

class FaultSoakTest : public ::testing::Test {
 protected:
  FaultSoakTest() {
    apps_.emplace<LearningSwitchApp>();
    apps_.emplace<RoutingApp>();
  }

  static PacketIn packet(int i) {
    // One canonical port per mac, so the final mac tables are independent
    // of the order the hives' packets interleave in.
    const std::uint64_t src = 100 + static_cast<std::uint64_t>(i % 16);
    return PacketIn{static_cast<SwitchId>(i % 8), src,
                    100 + static_cast<std::uint64_t>((i + 5) % 16),
                    static_cast<std::uint16_t>(1 + src % 4)};
  }

  static RouteAnnounce route(int i) {
    // Every announcement carries a distinct (prefix, mask): upsert order
    // cannot change the converged RIB.
    return RouteAnnounce{
        static_cast<std::uint32_t>((10 + i % 5) << 24 | (i << 8)), 24,
        static_cast<std::uint32_t>(0x0a000001 + i),
        static_cast<std::uint32_t>(1 + i % 3)};
  }

  /// Drives packet-ins + announcements from every hive in two bursts with
  /// a pause between them; `mid` runs at the pause (the faulty variant
  /// heals its partition there).
  void drive(SimCluster& sim, const std::function<void()>& mid = {}) {
    for (int i = 0; i < 60; ++i) {
      HiveId at = static_cast<HiveId>(i % sim.n_hives());
      sim.hive(at).inject(
          MessageEnvelope::make(packet(i), 0, kNoBee, at, sim.now()));
      sim.hive(at).inject(
          MessageEnvelope::make(route(i), 0, kNoBee, at, sim.now()));
      sim.run_for(200 * kMicrosecond);
    }
    if (mid) mid();
    sim.run_for(20 * kMillisecond);
    for (int i = 60; i < 120; ++i) {
      HiveId at = static_cast<HiveId>(i % sim.n_hives());
      sim.hive(at).inject(
          MessageEnvelope::make(packet(i), 0, kNoBee, at, sim.now()));
      sim.hive(at).inject(
          MessageEnvelope::make(route(i), 0, kNoBee, at, sim.now()));
      sim.run_for(200 * kMicrosecond);
    }
    sim.run_to_idle();
  }

  SimCluster make_sim() {
    ClusterConfig config;
    config.n_hives = 4;
    config.hive.metrics_period = 0;
    config.hive.transport.enabled = true;
    return SimCluster(config, apps_);
  }

  AppSet apps_;
};

TEST_F(FaultSoakTest, LossyChannelConvergesToCleanFinalState) {
  AppId lsw = apps_.find_by_name("learning_switch")->id();
  AppId rt = apps_.find_by_name("routing")->id();

  SimCluster clean = make_sim();
  clean.start();
  drive(clean);
  MacMap clean_macs = harvest_macs(clean, lsw);
  RibMap clean_rib = harvest_rib(clean, rt);
  ASSERT_FALSE(clean_macs.empty());
  ASSERT_FALSE(clean_rib.empty());

  SimCluster faulty = make_sim();
  faulty.start();
  faulty.faults().set_default_link({.drop = 0.05, .duplicate = 0.02});
  // Plus a partition episode between two non-registry hives during the
  // first burst, healed well within the transport's retransmission budget.
  faulty.faults().partition(1, 2);
  drive(faulty, [&faulty]() { faulty.faults().heal(1, 2); });

  // The network really was hostile...
  EXPECT_GT(faulty.faults().stats().frames_dropped, 0u);
  EXPECT_GT(faulty.faults().stats().frames_duplicated, 0u);
  EXPECT_GT(faulty.faults().stats().frames_partitioned, 0u);
  std::uint64_t retransmits = 0;
  for (std::size_t h = 0; h < faulty.n_hives(); ++h) {
    const TransportCounters& t =
        faulty.hive(static_cast<HiveId>(h)).transport_counters();
    retransmits += t.retransmits;
    EXPECT_EQ(t.frames_abandoned, 0u) << "hive " << h;
  }
  EXPECT_GT(retransmits, 0u);

  // ...and yet the applications converged to the identical final state.
  EXPECT_EQ(harvest_macs(faulty, lsw), clean_macs);
  EXPECT_EQ(harvest_rib(faulty, rt), clean_rib);
}

// ---------------------------------------------------------------------------
// Metrics pipeline: transport health reaches the collector
// ---------------------------------------------------------------------------

TEST(FaultMetricsTest, TransportCountersFlowToCollector) {
  AppSet apps;
  apps.emplace<CounterApp>();
  apps.emplace<CollectorApp>(std::make_shared<NoopStrategy>(), 2);
  ClusterConfig config;
  config.n_hives = 2;
  config.hive.metrics_period = 500 * kMillisecond;
  config.hive.timers_until = 3 * kSecond;
  config.hive.transport.enabled = true;
  SimCluster sim(config, apps);
  sim.start();
  sim.faults().set_default_link({.drop = 0.2});
  for (int i = 0; i < 20; ++i) {
    HiveId at = static_cast<HiveId>(i % 2);
    sim.hive(at).inject(MessageEnvelope::make(
        Incr{"k" + std::to_string(i % 3), 1}, 0, kNoBee, at, sim.now()));
    sim.run_for(20 * kMillisecond);
  }
  sim.run_until(3 * kSecond);
  sim.run_to_idle();

  AppId collector = apps.find_by_name("platform.collector")->id();
  std::vector<CollectorApp::TransportRow> rows;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app != collector) continue;
    Bee* bee = sim.hive(rec.hive).find_bee(rec.id);
    if (bee == nullptr) continue;
    auto harvested = CollectorApp::transport_from_store(bee->store());
    if (!harvested.empty()) rows = std::move(harvested);
  }
  ASSERT_EQ(rows.size(), 2u);  // one row per hive
  std::uint64_t data = 0;
  std::uint64_t retransmits = 0;
  for (const CollectorApp::TransportRow& row : rows) {
    data += row.transport.data_frames;
    retransmits += row.transport.retransmits;
    EXPECT_EQ(row.partitions_active, 0u);
    EXPECT_EQ(row.migration_aborts, 0u);
  }
  EXPECT_GT(data, 0u);
  EXPECT_GT(retransmits, 0u);
}

}  // namespace
}  // namespace beehive
