// Tests for the partitioned registry (DESIGN.md §13): shard routing,
// cross-shard cache-invalidation isolation, lease terms, determinism of
// the sharded path against the single-shard path under seeded fault
// injection, and full-vs-incremental placement equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/registry.h"
#include "placement/strategy.h"
#include "util/rng.h"

namespace beehive {
namespace {

constexpr AppId kApp = 1;

CellSet one(const std::string& key) { return CellSet::single("d", key); }

/// Finds `n` single-cell keys that all land on pairwise different shards.
std::vector<std::string> keys_on_distinct_shards(const RegistryService& reg,
                                                 std::size_t n) {
  std::vector<std::string> keys;
  std::vector<std::uint32_t> shards;
  for (int i = 0; keys.size() < n && i < 10'000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::uint32_t s = reg.shard_of_cell(kApp, {"d", key});
    bool taken = false;
    for (std::uint32_t seen : shards) taken = taken || seen == s;
    if (!taken) {
      keys.push_back(key);
      shards.push_back(s);
    }
  }
  EXPECT_EQ(keys.size(), n) << "could not find keys on distinct shards";
  return keys;
}

// ---------------------------------------------------------------------------
// Shard routing
// ---------------------------------------------------------------------------

TEST(RegistryShards, DefaultsAndClamping) {
  RegistryService def(4, nullptr);
  EXPECT_EQ(def.shard_count(), RegistryService::kDefaultShards);
  RegistryService one_shard(4, nullptr, 0, 1);
  EXPECT_EQ(one_shard.shard_count(), 1u);
  RegistryService zero(4, nullptr, 0, 0);
  EXPECT_GE(zero.shard_count(), 1u);
  RegistryService huge(4, nullptr, 0, 1000);
  EXPECT_EQ(huge.shard_count(), RegistryService::kMaxShards);
}

TEST(RegistryShards, ShardOfCellIsStableAndInRange) {
  RegistryService reg(4, nullptr, 0, 8);
  for (int i = 0; i < 100; ++i) {
    const CellKey cell{"d", std::to_string(i)};
    const std::uint32_t s = reg.shard_of_cell(kApp, cell);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, reg.shard_of_cell(kApp, cell));
  }
}

TEST(RegistryShards, PrimaryShardOfCrossShardSetIsSentinel) {
  RegistryService reg(4, nullptr, 0, 8);
  const auto keys = keys_on_distinct_shards(reg, 2);
  CellSet cross;
  cross.insert({"d", keys[0]});
  cross.insert({"d", keys[1]});
  EXPECT_EQ(reg.shard_of(kApp, cross), RegistryService::kAllShards);
  EXPECT_EQ(reg.shard_of(kApp, one(keys[0])),
            reg.shard_of_cell(kApp, {"d", keys[0]}));
}

TEST(RegistryShards, OpsAndResolvesCountPerShard) {
  RegistryService reg(4, nullptr, 0, 8);
  const auto keys = keys_on_distinct_shards(reg, 2);
  const std::uint32_t s0 = reg.shard_of_cell(kApp, {"d", keys[0]});
  const std::uint32_t s1 = reg.shard_of_cell(kApp, {"d", keys[1]});
  reg.resolve_or_create(kApp, one(keys[0]), 1, false, 0);
  EXPECT_GE(reg.shard_stats(s0).ops, 1u);
  EXPECT_EQ(reg.shard_stats(s0).resolves, 1u);
  EXPECT_EQ(reg.shard_stats(s1).resolves, 0u);
}

// ---------------------------------------------------------------------------
// Cross-shard cache isolation (the tentpole property)
// ---------------------------------------------------------------------------

TEST(RegistryShards, WriteToOneShardKeepsOtherShardsMemoValid) {
  RegistryService reg(4, nullptr, 0, 8);
  RegistryService::Client client(reg, 1);
  const auto keys = keys_on_distinct_shards(reg, 2);
  const CellSet cells_a = one(keys[0]);
  const CellSet cells_b = one(keys[1]);

  const auto out_a = client.resolve_or_create(kApp, cells_a, false, 0);
  const auto out_b = client.resolve_or_create(kApp, cells_b, false, 0);
  ASSERT_NE(out_a.bee, kNoBee);
  ASSERT_NE(out_b.bee, kNoBee);
  ASSERT_NE(out_a.shard, out_b.shard);

  const auto stamp_a = client.stamp(kApp, cells_a);
  const auto stamp_b = client.stamp(kApp, cells_b);
  EXPECT_TRUE(client.stamp_valid(stamp_a));
  EXPECT_TRUE(client.stamp_valid(stamp_b));
  const std::uint64_t version_a = client.shard_version(out_a.shard);

  // Ownership write against B's shard: move B's bee to another hive.
  reg.move_bee(out_b.bee, 3, 0);

  // B's stamp is dead, A's stamp and version are untouched.
  EXPECT_FALSE(client.stamp_valid(stamp_b));
  EXPECT_TRUE(client.stamp_valid(stamp_a));
  EXPECT_EQ(client.shard_version(out_a.shard), version_a);

  // And A still serves from cache: hits grow, misses do not.
  const std::uint64_t hits = client.cache_hits();
  const std::uint64_t misses = client.cache_misses();
  const auto again = client.resolve_or_create(kApp, cells_a, false, 0);
  EXPECT_EQ(again.bee, out_a.bee);
  EXPECT_EQ(client.cache_hits(), hits + 1);
  EXPECT_EQ(client.cache_misses(), misses);
}

TEST(RegistryShards, PerShardMemosSurviveAlternation) {
  // The memo is per shard: alternating between two cell sets on different
  // shards must not thrash a single memo slot.
  RegistryService reg(4, nullptr, 0, 8);
  RegistryService::Client client(reg, 1);
  const auto keys = keys_on_distinct_shards(reg, 2);
  client.resolve_or_create(kApp, one(keys[0]), false, 0);
  client.resolve_or_create(kApp, one(keys[1]), false, 0);
  const std::uint64_t misses = client.cache_misses();
  const std::uint64_t hits = client.cache_hits();
  for (int i = 0; i < 10; ++i) {
    client.resolve_or_create(kApp, one(keys[i % 2]), false, 0);
  }
  EXPECT_EQ(client.cache_misses(), misses);
  EXPECT_EQ(client.cache_hits(), hits + 10);
}

TEST(RegistryShards, CrossShardMergeCollocatesAndInvalidatesBothShards) {
  RegistryService reg(4, nullptr, 0, 8);
  RegistryService::Client client(reg, 1);
  const auto keys = keys_on_distinct_shards(reg, 2);
  const auto out_a = client.resolve_or_create(kApp, one(keys[0]), false, 0);
  const auto out_b = client.resolve_or_create(kApp, one(keys[1]), false, 0);
  const auto stamp_a = client.stamp(kApp, one(keys[0]));
  const auto stamp_b = client.stamp(kApp, one(keys[1]));

  CellSet both;
  both.insert({"d", keys[0]});
  both.insert({"d", keys[1]});
  const auto merged = client.resolve_or_create(kApp, both, false, 0);
  ASSERT_NE(merged.bee, kNoBee);
  EXPECT_EQ(merged.shard, RegistryService::kAllShards);
  EXPECT_EQ(merged.losers.size(), 1u);

  // The merge reassigned cells in both shards: both stamps die.
  EXPECT_FALSE(client.stamp_valid(stamp_a));
  EXPECT_FALSE(client.stamp_valid(stamp_b));

  // All three cell sets now resolve to the same (collocated) bee.
  EXPECT_EQ(client.resolve_or_create(kApp, one(keys[0]), false, 0).bee,
            merged.bee);
  EXPECT_EQ(client.resolve_or_create(kApp, one(keys[1]), false, 0).bee,
            merged.bee);
  const bool winner_was_a = merged.bee == out_a.bee;
  EXPECT_TRUE(winner_was_a || merged.bee == out_b.bee);
}

TEST(RegistryShards, WholeDictAbsorbsKeysAcrossAllShards) {
  RegistryService reg(4, nullptr, 0, 8);
  for (int i = 0; i < 32; ++i) {
    reg.resolve_or_create(kApp, one("w" + std::to_string(i)), 1, false, 0);
  }
  const auto star =
      reg.resolve_or_create(kApp, CellSet::whole_dict("d"), 2, false, 0);
  ASSERT_NE(star.bee, kNoBee);
  // The winner is one of the 32 existing bees (31 losers) unless the
  // registry minted a fresh owner (then all 32 lose).
  EXPECT_EQ(star.losers.size(), star.created ? 32u : 31u);
  // Every key now routes to the whole-dict owner, from every shard.
  for (int i = 0; i < 32; ++i) {
    const auto out =
        reg.resolve_or_create(kApp, one("w" + std::to_string(i)), 1, false, 0);
    EXPECT_EQ(out.bee, star.bee);
  }
}

// ---------------------------------------------------------------------------
// Determinism: sharded == unsharded under seeded faults
// ---------------------------------------------------------------------------

struct Observed {
  BeeId bee;
  HiveId hive;
  std::size_t losers;
  bool operator==(const Observed&) const = default;
};

/// Runs a seeded operation mix (creates, repeats, merges, whole-dict
/// absorbs, moves) through a client whose RPC channel drops every 7th
/// attempt, and records what each operation observed.
std::vector<Observed> run_scripted(std::size_t n_shards,
                                   std::uint64_t seed) {
  RegistryService reg(8, nullptr, 0, n_shards);
  std::uint64_t attempt = 0;
  reg.set_rpc_fault_hook([&attempt](HiveId) { return ++attempt % 7 == 0; });
  RegistryService::Client client(reg, 1);
  Xoshiro256 rng(seed);
  std::vector<Observed> log;
  TimePoint now = 0;
  for (int op = 0; op < 400; ++op) {
    now += kSecond;  // outruns any client backoff window
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 6) {
      // Point resolve over a small key space: mixes creates and repeats.
      const auto out = client.resolve_or_create(
          kApp, one("k" + std::to_string(rng.next_below(64))), false, now);
      log.push_back({out.bee, out.hive, out.losers.size()});
    } else if (kind < 8) {
      // Pairwise merge.
      CellSet cells;
      cells.insert({"d", "k" + std::to_string(rng.next_below(64))});
      cells.insert({"d", "k" + std::to_string(rng.next_below(64))});
      const auto out = client.resolve_or_create(kApp, cells, false, now);
      log.push_back({out.bee, out.hive, out.losers.size()});
    } else if (kind < 9) {
      // Side dictionaries: point creates, with an occasional whole-dict
      // absorb (the operation that locks every shard).
      const std::string dict = "side" + std::to_string(rng.next_below(4));
      const CellSet cells =
          rng.next_below(8) == 0
              ? CellSet::whole_dict(dict)
              : CellSet::single(dict, std::to_string(rng.next_below(8)));
      const auto out = client.resolve_or_create(kApp, cells, false, now);
      log.push_back({out.bee, out.hive, out.losers.size()});
    } else {
      // Service-side move of a known bee, if any resolved yet.
      if (!log.empty() && log.back().bee != kNoBee) {
        reg.move_bee_rpc(reg.live_successor(log.back().bee),
                         static_cast<HiveId>(rng.next_below(8)), 1, now);
      }
      log.push_back({kNoBee, 0, 0});
    }
  }
  // Fold the final ownership map in as well: same bees, same hives,
  // same cell counts.
  for (const BeeRecord& rec : reg.live_bees()) {
    log.push_back({rec.id, rec.hive, rec.cells.size()});
  }
  return log;
}

TEST(RegistryShards, ShardedAgreesWithUnshardedUnderSeededFaults) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto unsharded = run_scripted(1, seed);
    const auto sharded = run_scripted(8, seed);
    EXPECT_EQ(unsharded, sharded) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------------

TEST(RegistryShards, LeaseExpiryForcesRevalidation) {
  RegistryService reg(4, nullptr, 0, 8);
  reg.set_lease(10 * kSecond, 5 * kSecond);
  RegistryService::Client client(reg, 1);
  const CellSet cells = one("leased");
  const auto out = client.resolve_or_create(kApp, cells, false, 0);
  ASSERT_NE(out.bee, kNoBee);
  EXPECT_GT(out.lease_term, 0u);
  EXPECT_EQ(out.lease_expiry, 10 * kSecond);

  // Within the lease: cache hit, no renewal.
  client.resolve_or_create(kApp, cells, false, 5 * kSecond);
  EXPECT_EQ(client.lease_renewals(), 0u);
  EXPECT_EQ(client.cache_hits(), 1u);

  // Past expiry (but master reachable): one revalidation RPC renews it,
  // and the entry itself was still correct.
  const auto renewed =
      client.resolve_or_create(kApp, cells, false, 11 * kSecond);
  EXPECT_EQ(renewed.bee, out.bee);
  EXPECT_EQ(client.lease_renewals(), 1u);

  // Renewal extended the lease: hits serve again.
  const std::uint64_t hits = client.cache_hits();
  client.resolve_or_create(kApp, cells, false, 12 * kSecond);
  EXPECT_EQ(client.cache_hits(), hits + 1);
}

TEST(RegistryShards, StaleServeInsideGraceWhenMasterUnreachable) {
  RegistryService reg(4, nullptr, 0, 8);
  reg.set_lease(10 * kSecond, 60 * kSecond);
  RegistryService::Client client(reg, 1);

  // Fill the cache while the master is reachable.
  const auto out = client.resolve_or_create(kApp, one("jeopardy"), false, 0);
  ASSERT_NE(out.bee, kNoBee);

  // Master unreachable + lease expired but inside grace: serve stale.
  reg.set_rpc_fault_hook([](HiveId) { return true; });
  const auto stale =
      client.resolve_or_create(kApp, one("jeopardy"), false, 20 * kSecond);
  EXPECT_EQ(stale.bee, out.bee);
  EXPECT_GE(client.stale_serves(), 1u);

  // Past the grace window the assignment is dead: the lookup fails rather
  // than serving arbitrarily old data.
  const auto dead =
      client.resolve_or_create(kApp, one("jeopardy"), false, 80 * kSecond);
  EXPECT_EQ(dead.bee, kNoBee);
}

TEST(RegistryShards, TermBumpPurgesOnlyThatShard) {
  RegistryService reg(4, nullptr, 0, 8);
  reg.set_lease(10 * kSecond, 3600 * kSecond);
  RegistryService::Client client(reg, 1);

  // Two keys on shard A, two on shard B.
  const auto keys = keys_on_distinct_shards(reg, 2);
  const std::uint32_t shard_a = reg.shard_of_cell(kApp, {"d", keys[0]});
  const std::uint32_t shard_b = reg.shard_of_cell(kApp, {"d", keys[1]});
  std::string a2, b2;
  for (int i = 0; a2.empty() || b2.empty(); ++i) {
    ASSERT_LT(i, 10'000);
    const std::string key = "x" + std::to_string(i);
    const std::uint32_t s = reg.shard_of_cell(kApp, {"d", key});
    if (s == shard_a && a2.empty()) a2 = key;
    if (s == shard_b && b2.empty()) b2 = key;
  }
  const auto out_a1 = client.resolve_or_create(kApp, one(keys[0]), false, 0);
  const auto out_a2 = client.resolve_or_create(kApp, one(a2), false, 0);
  const auto out_b1 = client.resolve_or_create(kApp, one(keys[1]), false, 0);
  const auto out_b2 = client.resolve_or_create(kApp, one(b2), false, 0);

  // Failover of shard A: bump its term. The client learns about it on its
  // next fill against A (lease expiry forces one at t=20s).
  reg.expire_shard_lease(shard_a);
  const auto re_a1 =
      client.resolve_or_create(kApp, one(keys[0]), false, 20 * kSecond);
  const auto re_b1 =
      client.resolve_or_create(kApp, one(keys[1]), false, 20 * kSecond);
  EXPECT_EQ(re_a1.bee, out_a1.bee);
  EXPECT_EQ(re_b1.bee, out_b1.bee);
  EXPECT_EQ(client.lease_renewals(), 2u);

  // The term change purged shard A's other cached entry; shard B's
  // revalidation saw an unchanged term and kept everything.
  const std::uint64_t hits = client.cache_hits();
  const std::uint64_t misses = client.cache_misses();
  const auto re_b2 =
      client.resolve_or_create(kApp, one(b2), false, 21 * kSecond);
  EXPECT_EQ(re_b2.bee, out_b2.bee);
  EXPECT_EQ(client.cache_hits(), hits + 1);
  EXPECT_EQ(client.cache_misses(), misses);
  const auto re_a2 =
      client.resolve_or_create(kApp, one(a2), false, 21 * kSecond);
  EXPECT_EQ(re_a2.bee, out_a2.bee);
  EXPECT_EQ(client.cache_misses(), misses + 1);

  // And the revalidating resolve itself survived its own purge: a1 serves
  // from cache now that the lease is fresh again.
  const std::uint64_t hits2 = client.cache_hits();
  client.resolve_or_create(kApp, one(keys[0]), false, 22 * kSecond);
  EXPECT_EQ(client.cache_hits(), hits2 + 1);
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(RegistryShards, ConcurrentResolvesAgreeOnOwnership) {
  RegistryService reg(8, nullptr, 0, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr int kKeys = 64;
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread && !failed; ++i) {
        const auto out = reg.resolve_or_create(
            kApp, one("c" + std::to_string(rng.next_below(kKeys))),
            static_cast<HiveId>(t), false, 0);
        if (out.bee == kNoBee) failed = true;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(failed);
  // Quiesced: every key owned by exactly one live bee, and repeat resolves
  // are stable.
  for (int k = 0; k < kKeys; ++k) {
    const auto a =
        reg.resolve_or_create(kApp, one("c" + std::to_string(k)), 0, false, 0);
    const auto b =
        reg.resolve_or_create(kApp, one("c" + std::to_string(k)), 1, false, 0);
    EXPECT_EQ(a.bee, b.bee);
    EXPECT_TRUE(a.losers.empty());
  }
  EXPECT_LE(reg.live_bee_count(), static_cast<std::size_t>(kKeys));
}

// ---------------------------------------------------------------------------
// Incremental placement == full placement
// ---------------------------------------------------------------------------

ClusterView synth_view(std::uint64_t seed, RoundMode mode) {
  constexpr std::size_t kBees = 500;
  constexpr std::size_t kHives = 8;
  Xoshiro256 rng(seed);
  ClusterView view;
  view.n_hives = kHives;
  view.mode = mode;
  for (HiveId h = 0; h < kHives; ++h) {
    view.hive_cells[h] = 0;
    view.hive_pressure[h] = 0.4 * rng.next_double();
  }
  for (std::size_t i = 0; i < kBees; ++i) {
    const bool active = rng.next_double() < 0.1;
    BeeView bee;
    bee.bee = static_cast<BeeId>(i + 1);
    bee.app = kApp;
    bee.hive = static_cast<HiveId>(i % kHives);
    bee.cells = 1 + rng.next_below(3);
    view.hive_cells[bee.hive] += bee.cells;
    bee.dirty = active;
    if (active) {
      bee.msgs_in = 8 + rng.next_below(256);
      bee.cost_us = rng.next_below(2) == 0 ? bee.msgs_in * 5 : 0;
      const auto major = static_cast<HiveId>(rng.next_below(kHives));
      bee.inbound_by_hive[major] = (bee.msgs_in * 3) / 4;
      bee.inbound_by_hive[bee.hive] += bee.msgs_in / 4;
    }
    if (mode == RoundMode::kIncremental && !active) continue;
    view.bees.push_back(std::move(bee));
  }
  return view;
}

TEST(IncrementalPlacement, MatchesFullRoundForEveryStrategy) {
  GreedyFollowSources greedy;
  CostPressureStrategy costpressure;
  LoadBalanceStrategy loadbalance;
  PlacementStrategy* strategies[] = {&greedy, &costpressure, &loadbalance};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ClusterView full = synth_view(seed, RoundMode::kFull);
    const ClusterView incr = synth_view(seed, RoundMode::kIncremental);
    for (PlacementStrategy* s : strategies) {
      EXPECT_EQ(s->decide(full), s->decide(incr))
          << s->name() << " seed " << seed;
    }
  }
}

TEST(IncrementalPlacement, FullViewWithIncrementalModeSkipsCleanBees) {
  // Even when clean bees ARE present in the view (the full sweep every K
  // rounds marks them clean), incremental mode must not move them.
  const ClusterView full = synth_view(3, RoundMode::kFull);
  ClusterView mixed = full;
  mixed.mode = RoundMode::kIncremental;
  GreedyFollowSources greedy;
  EXPECT_EQ(greedy.decide(full), greedy.decide(mixed));
}

TEST(IncrementalPlacement, RoundModeRoundTripsThroughPlacementRound) {
  PlacementRound round;
  round.round = 3;
  round.at = 99;
  round.strategy = "greedy";
  round.mode = "incremental";
  round.scored = 17;
  PlacementDecision d;
  d.bee = 5;
  d.to = 2;
  d.accepted = true;
  d.reason = "majority";
  round.decisions.push_back(d);
  ByteWriter w;
  round.encode(w);
  ByteReader r(w.bytes());
  const PlacementRound back = PlacementRound::decode(r);
  EXPECT_EQ(back.mode, "incremental");
  EXPECT_EQ(back.scored, 17u);
  EXPECT_EQ(back.round, 3u);
  ASSERT_EQ(back.decisions.size(), 1u);
  EXPECT_EQ(back.decisions[0].bee, 5u);
}

}  // namespace
}  // namespace beehive
