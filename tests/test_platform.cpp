// End-to-end tests of the platform core on the deterministic simulator:
// routing, state consistency, collocation/merging, whole-dict
// centralization, transactional handlers, timers, and live migration.
#include <gtest/gtest.h>

#include "cluster/sim.h"
#include "instrument/collector.h"
#include "tests/test_helpers.h"

namespace beehive {
namespace {

using testing::CounterApp;
using testing::CounterQuery;
using testing::CounterValue;
using testing::I64;
using testing::Incr;
using testing::PairIncr;
using testing::Poison;
using testing::SinkApp;
using testing::SumQuery;

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest() {
    apps_.emplace<CounterApp>();
    apps_.emplace<SinkApp>();
  }

  SimCluster make_sim(std::size_t n_hives) {
    ClusterConfig config;
    config.n_hives = n_hives;
    config.hive.metrics_period = 0;  // no collector in these tests
    return SimCluster(config, apps_);
  }

  /// Injects a message at `hive` and runs the sim to quiescence.
  template <typename M>
  void send(SimCluster& sim, HiveId hive, M msg) {
    sim.hive(hive).inject(
        MessageEnvelope::make(std::move(msg), 0, kNoBee, hive, sim.now()));
    sim.run_to_idle();
  }

  /// Finds the single live bee owning `cell` for the counter app and
  /// returns (bee record, local Bee*).
  std::pair<BeeRecord, Bee*> find_owner(SimCluster& sim,
                                        const std::string& key) {
    AppId app = apps_.find_by_name("test.counter")->id();
    auto out = sim.registry().resolve_or_create(
        app, CellSet::single(std::string(CounterApp::kDict), key), 0, false,
        sim.now());
    const BeeRecord* rec = sim.registry().find(out.bee);
    EXPECT_NE(rec, nullptr);
    Bee* bee = sim.hive(rec->hive).find_bee(out.bee);
    return {*rec, bee};
  }

  std::int64_t counter_value(SimCluster& sim, const std::string& key) {
    auto [rec, bee] = find_owner(sim, key);
    if (bee == nullptr) return -1;
    auto v = bee->store().dict(CounterApp::kDict).get_as<I64>(key);
    return v ? v->v : -1;
  }

  Bee* sink_bee(SimCluster& sim) {
    AppId app = apps_.find_by_name("test.sink")->id();
    auto out = sim.registry().resolve_or_create(
        app, CellSet::whole_dict(std::string(SinkApp::kDict)), 0, false,
        sim.now());
    const BeeRecord* rec = sim.registry().find(out.bee);
    return sim.hive(rec->hive).find_bee(out.bee);
  }

  AppSet apps_;
};

// ---------------------------------------------------------------------------
// Basic routing and state
// ---------------------------------------------------------------------------

TEST_F(PlatformTest, SingleHiveCounterAccumulates) {
  SimCluster sim = make_sim(1);
  sim.start();
  send(sim, 0, Incr{"a", 2});
  send(sim, 0, Incr{"a", 3});
  EXPECT_EQ(counter_value(sim, "a"), 5);
}

TEST_F(PlatformTest, BeeCreatedOnInjectingHive) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 2, Incr{"x", 1});
  auto [rec, bee] = find_owner(sim, "x");
  EXPECT_EQ(rec.hive, 2u);
  ASSERT_NE(bee, nullptr);
  EXPECT_EQ(bee->total().msgs_in, 1u);
}

TEST_F(PlatformTest, SameKeyFromDifferentHivesReachesSameBee) {
  SimCluster sim = make_sim(4);
  sim.start();
  for (HiveId h = 0; h < 4; ++h) send(sim, h, Incr{"shared", 1});
  EXPECT_EQ(counter_value(sim, "shared"), 4);
  // Exactly one bee owns the cell cluster-wide.
  int owners = 0;
  for (HiveId h = 0; h < 4; ++h) {
    for (Bee* bee : sim.hive(h).local_bees()) {
      if (bee->store().find_dict(CounterApp::kDict) != nullptr) ++owners;
    }
  }
  EXPECT_EQ(owners, 1);
}

TEST_F(PlatformTest, RemoteDeliveryIsMetered) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, Incr{"k", 1});     // bee lands on hive 0
  std::uint64_t before = sim.meter().matrix_bytes(1, 0);
  send(sim, 1, Incr{"k", 1});     // must cross 1 -> 0
  EXPECT_GT(sim.meter().matrix_bytes(1, 0), before);
  EXPECT_EQ(counter_value(sim, "k"), 2);
}

TEST_F(PlatformTest, DifferentKeysSpreadOverInjectingHives) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 0, Incr{"h0", 1});
  send(sim, 1, Incr{"h1", 1});
  send(sim, 2, Incr{"h2", 1});
  EXPECT_NE(sim.hive(0).local_bees().size(), 0u);
  EXPECT_NE(sim.hive(1).local_bees().size(), 0u);
  EXPECT_NE(sim.hive(2).local_bees().size(), 0u);
}

TEST_F(PlatformTest, EmittedMessagesRouteToOtherApps) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, Incr{"q", 7});
  send(sim, 1, CounterQuery{"q"});  // counter bee emits CounterValue
  Bee* sink = sink_bee(sim);
  ASSERT_NE(sink, nullptr);
  auto last = sink->store().dict(SinkApp::kDict).get_as<I64>("last:q");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->v, 7);
}

// ---------------------------------------------------------------------------
// Collocation / merging (paper §2's K1 ∩ K2 ≠ ∅ rule)
// ---------------------------------------------------------------------------

TEST_F(PlatformTest, PairMessageMergesBees) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 0, Incr{"a", 10});
  send(sim, 1, Incr{"b", 20});
  EXPECT_EQ(sim.registry().live_bee_count(), 2u);
  send(sim, 2, PairIncr{"a", "b"});
  EXPECT_EQ(sim.registry().live_bee_count(), 1u);
  // State survived the merge and the pair handler ran once on both keys.
  EXPECT_EQ(counter_value(sim, "a"), 11);
  EXPECT_EQ(counter_value(sim, "b"), 21);
  // And both keys now live on the same bee.
  auto [rec_a, bee_a] = find_owner(sim, "a");
  auto [rec_b, bee_b] = find_owner(sim, "b");
  EXPECT_EQ(rec_a.id, rec_b.id);
}

TEST_F(PlatformTest, ChainOfMergesCollapsesTransitively) {
  SimCluster sim = make_sim(4);
  sim.start();
  for (int i = 0; i < 4; ++i) {
    send(sim, static_cast<HiveId>(i), Incr{"k" + std::to_string(i), 1});
  }
  EXPECT_EQ(sim.registry().live_bee_count(), 4u);
  send(sim, 0, PairIncr{"k0", "k1"});
  send(sim, 1, PairIncr{"k1", "k2"});
  send(sim, 2, PairIncr{"k2", "k3"});
  EXPECT_EQ(sim.registry().live_bee_count(), 1u);
  EXPECT_EQ(counter_value(sim, "k0"), 2);  // 1 + pair(k0,k1)
  EXPECT_EQ(counter_value(sim, "k1"), 3);  // 1 + two pairs
  EXPECT_EQ(counter_value(sim, "k2"), 3);
  EXPECT_EQ(counter_value(sim, "k3"), 2);
}

TEST_F(PlatformTest, WholeDictQueryCentralizesAndSums) {
  SimCluster sim = make_sim(4);
  sim.start();
  for (int i = 0; i < 8; ++i) {
    send(sim, static_cast<HiveId>(i % 4), Incr{"c" + std::to_string(i), i});
  }
  EXPECT_EQ(sim.registry().live_bee_count(), 8u);
  send(sim, 3, SumQuery{1});
  // All counter cells merged onto one bee (plus the sink's).
  AppId counter_app = apps_.find_by_name("test.counter")->id();
  std::size_t counter_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == counter_app) ++counter_bees;
  }
  EXPECT_EQ(counter_bees, 1u);
  // The sum observed every key: 0+1+...+7 = 28.
  Bee* sink = sink_bee(sim);
  ASSERT_NE(sink, nullptr);
  auto sum = sink->store().dict(SinkApp::kDict).get_as<I64>("last:*sum*");
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->v, 28);
}

TEST_F(PlatformTest, NewKeysAfterCentralizationJoinTheGlobalBee) {
  SimCluster sim = make_sim(4);
  sim.start();
  send(sim, 0, SumQuery{1});  // centralizes dict "cnt" from the start
  send(sim, 2, Incr{"late", 5});
  EXPECT_EQ(counter_value(sim, "late"), 5);
  AppId counter_app = apps_.find_by_name("test.counter")->id();
  std::size_t counter_bees = 0;
  for (const BeeRecord& rec : sim.registry().live_bees()) {
    if (rec.app == counter_app) ++counter_bees;
  }
  EXPECT_EQ(counter_bees, 1u);
}

TEST_F(PlatformTest, OutOfOrderMergeTransfersDoNotUnblockEarly) {
  // Regression for the transfer-fence protocol: a merge decided *remotely*
  // (its payload delayed by wire latency) followed by a merge decided
  // *locally* (payload applied instantly). The locally-applied transfer
  // must not satisfy the fence of the remote one — the winner has to stay
  // blocked until the remote loser's state lands, or increments processed
  // in between are overwritten by the late snapshot.
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 1, Incr{"a", 1});  // bee A on hive 1
  send(sim, 1, Incr{"b", 5});  // bee B on hive 1

  // Remote resolver (hive 0) merges {a, b}: MergeCmd + payload need a wire
  // round trip. Inject WITHOUT draining so everything below races it.
  sim.hive(0).inject(
      MessageEnvelope::make(PairIncr{"a", "b"}, 0, kNoBee, 0, sim.now()));

  // While that merge is in flight: more increments to "b" (the moving
  // cell), plus a locally-decided merge {a, c} whose payload applies
  // instantly on hive 1.
  sim.hive(1).inject(
      MessageEnvelope::make(Incr{"b", 1}, 0, kNoBee, 1, sim.now()));
  sim.hive(1).inject(
      MessageEnvelope::make(Incr{"c", 100}, 0, kNoBee, 1, sim.now()));
  sim.hive(1).inject(
      MessageEnvelope::make(PairIncr{"a", "c"}, 0, kNoBee, 1, sim.now()));
  sim.hive(1).inject(
      MessageEnvelope::make(Incr{"b", 1}, 0, kNoBee, 1, sim.now()));
  sim.run_to_idle();

  EXPECT_EQ(counter_value(sim, "a"), 3);    // 1 + both pairs
  EXPECT_EQ(counter_value(sim, "b"), 8);    // 5 + pair + 1 + 1
  EXPECT_EQ(counter_value(sim, "c"), 101);  // 100 + pair
  EXPECT_EQ(sim.registry().live_bee_count(), 1u);
}

// ---------------------------------------------------------------------------
// Transactional handlers
// ---------------------------------------------------------------------------

TEST_F(PlatformTest, ThrowingHandlerRollsBackStateAndEmissions) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, Incr{"p", 1});
  Bee* sink_before = sink_bee(sim);
  std::uint64_t sink_msgs =
      sink_before == nullptr ? 0 : sink_before->total().msgs_in;

  send(sim, 0, Poison{"p"});  // writes 9999, emits, then throws

  EXPECT_EQ(counter_value(sim, "p"), 1);  // write rolled back
  Bee* sink_after = sink_bee(sim);
  std::uint64_t sink_msgs_after =
      sink_after == nullptr ? 0 : sink_after->total().msgs_in;
  EXPECT_EQ(sink_msgs_after, sink_msgs);  // emission discarded
  auto [rec, bee] = find_owner(sim, "p");
  ASSERT_NE(bee, nullptr);
  EXPECT_EQ(bee->total().handler_failures, 1u);
  EXPECT_EQ(sim.hive(rec.hive).counters().handler_failures, 1u);
}

TEST_F(PlatformTest, FailedHandlerDoesNotPoisonSubsequentMessages) {
  SimCluster sim = make_sim(1);
  sim.start();
  send(sim, 0, Poison{"z"});
  send(sim, 0, Incr{"z", 4});
  EXPECT_EQ(counter_value(sim, "z"), 4);
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

TEST_F(PlatformTest, ManualMigrationMovesStateAndOwnership) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 0, Incr{"m", 42});
  auto [rec, bee] = find_owner(sim, "m");
  ASSERT_EQ(rec.hive, 0u);

  sim.hive(0).request_migration(rec.id, 2);
  sim.run_to_idle();

  EXPECT_EQ(sim.registry().hive_of(rec.id), 2u);
  EXPECT_EQ(sim.hive(0).find_bee(rec.id), nullptr);
  Bee* moved = sim.hive(2).find_bee(rec.id);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->store().dict(CounterApp::kDict).get_as<I64>("m")->v, 42);
  EXPECT_EQ(sim.hive(2).counters().migrations_in, 1u);
  EXPECT_EQ(sim.hive(0).counters().migrations_out, 1u);
  // And it still works.
  send(sim, 1, Incr{"m", 1});
  EXPECT_EQ(counter_value(sim, "m"), 43);
}

TEST_F(PlatformTest, MessagesDuringMigrationAreNotLost) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 0, Incr{"w", 1});
  auto [rec, bee] = find_owner(sim, "w");

  // Start the migration and inject while the transfer is in flight.
  sim.hive(0).request_migration(rec.id, 2);
  for (int i = 0; i < 5; ++i) {
    sim.hive(1).inject(
        MessageEnvelope::make(Incr{"w", 1}, 0, kNoBee, 1, sim.now()));
  }
  sim.run_to_idle();
  EXPECT_EQ(counter_value(sim, "w"), 6);
}

TEST_F(PlatformTest, MigrationOrderForNonLocalBeeIsForwarded) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 1, Incr{"f", 1});
  auto [rec, bee] = find_owner(sim, "f");
  ASSERT_EQ(rec.hive, 1u);
  // Ask hive 0 (wrong hive) to migrate it; the order must be forwarded.
  sim.hive(0).request_migration(rec.id, 2);
  sim.run_to_idle();
  EXPECT_EQ(sim.registry().hive_of(rec.id), 2u);
  EXPECT_EQ(counter_value(sim, "f"), 1);
}

TEST_F(PlatformTest, MigrationToCurrentHiveIsNoop) {
  SimCluster sim = make_sim(2);
  sim.start();
  send(sim, 0, Incr{"n", 1});
  auto [rec, bee] = find_owner(sim, "n");
  sim.hive(0).request_migration(rec.id, 0);
  sim.run_to_idle();
  EXPECT_EQ(sim.registry().hive_of(rec.id), 0u);
  EXPECT_EQ(sim.hive(0).counters().migrations_out, 0u);
}

TEST_F(PlatformTest, StaleSenderCacheIsHealedByForwarding) {
  SimCluster sim = make_sim(3);
  sim.start();
  send(sim, 0, Incr{"s", 1});   // bee on hive 0
  send(sim, 1, Incr{"s", 1});   // hive 1 caches the location
  auto [rec, bee] = find_owner(sim, "s");
  sim.hive(0).request_migration(rec.id, 2);
  sim.run_to_idle();
  // Hive 1's cache was invalidated via the registry push; but even a
  // stale delivery would be forwarded. Either way the count is right.
  send(sim, 1, Incr{"s", 1});
  EXPECT_EQ(counter_value(sim, "s"), 3);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST_F(PlatformTest, IdenticalRunsProduceIdenticalTraffic) {
  auto run = [this]() {
    SimCluster sim = make_sim(4);
    sim.start();
    for (int i = 0; i < 20; ++i) {
      send(sim, static_cast<HiveId>(i % 4),
           Incr{"k" + std::to_string(i % 7), 1});
    }
    send(sim, 0, SumQuery{9});
    return std::make_pair(sim.meter().total_bytes(),
                          sim.meter().total_messages());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace beehive
